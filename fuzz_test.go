package pathoram

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// FuzzOpenSpec drives Open with randomized (bounded) Specs: every input
// must either construct a working client or return an error — never
// panic. Constructed clients then run the canonical workload and must
// honor read-your-writes, Flush idempotence and Close cleanliness
// regardless of which corner of the design space the bytes selected.

// specSource decodes bounded Spec fields from a fuzz byte stream,
// yielding zeros once the stream runs dry (so short inputs explore the
// defaults).
type specSource struct {
	data []byte
	i    int
}

func (s *specSource) next() byte {
	if s.i >= len(s.data) {
		return 0
	}
	v := s.data[s.i]
	s.i++
	return v
}

// specFromBytes maps fuzz bytes onto a Spec. Ranges are deliberately a
// superset of the valid domain: unknown enum values, inert-knob
// combinations and zero sizes must all surface as Open errors.
func specFromBytes(data []byte) Spec {
	s := &specSource{data: data}
	spec := Spec{
		Blocks:    uint64(s.next())%512 + 1,
		BlockSize: int(s.next()) % 65, // 0 explores the default
		Shards:    int(s.next()) % 6,  // 0 explores the default
		Partition: Partition(s.next() % 4),
		Padded:    s.next()%2 == 1,
		PosMap:    PosMapPolicy(s.next() % 3),
		Z:         int(s.next()) % 6,
		// Low stash bounds can overflow — a legitimate runtime error the
		// workload below tolerates, but never a panic.
		StashCapacity:     int(s.next()) % 201,
		ConstantTimeStash: s.next()%2 == 1,
		Encryption:        Encryption(s.next() % 4),
		Integrity:         s.next()%2 == 1,
		QueueDepth:        int(s.next()) % 65,
		AsyncEviction:     s.next()%2 == 1,
		Backend:           Backend(s.next() % 3),
		Rand:              rand.New(rand.NewSource(int64(s.next()) | int64(s.next())<<8)),
	}
	if s.next()%2 == 1 {
		spec.MaxDeferredWriteBacks = int(s.next()) % 9
	}
	if s.next()%2 == 1 {
		spec.EvictionsPerIdle = int(s.next())%6 - 1
	}
	if s.next()%2 == 1 {
		// Recursion knobs — valid only with PosMapRecursive; otherwise
		// Open must reject, which is exactly a path worth fuzzing.
		spec.PosBlockSize = int(s.next()) % 65
		spec.OnChipPosMapMax = uint64(s.next()) * 16
		spec.PosZ = int(s.next()) % 6
	}
	if s.next()%2 == 1 {
		// DRAM knobs — valid only with BackendDRAM.
		spec.DRAMChannels = int(s.next()) % 5
		spec.DRAMLayout = DRAMLayout(s.next() % 3)
		spec.DRAMSerialize = s.next()%2 == 1
	}
	return spec
}

func FuzzOpenSpec(f *testing.F) {
	// Seed corpus: defaults, a sharded dram point, a recursive point, an
	// async constant-time point, inert-knob rejections, and a strawman-
	// encryption padded point.
	f.Add([]byte{})
	f.Add([]byte{63, 16, 1, 0, 0, 0, 4, 100, 0, 1, 0, 8, 0, 0, 7, 7})
	f.Add([]byte{127, 32, 4, 2, 0, 0, 0, 0, 1, 1, 0, 16, 1, 2, 1, 2, 1, 4, 1, 0, 1, 2, 1, 1})
	f.Add([]byte{255, 0, 2, 1, 1, 1, 5, 50, 1, 2, 1, 0, 1, 1, 3, 9, 1, 8, 1, 3})
	f.Add([]byte{10, 8, 0, 3, 0, 2, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 0, 1, 32, 64, 2})
	f.Add([]byte{40, 24, 3, 0, 1, 0, 3, 120, 0, 3, 1, 4, 1, 1, 1, 1, 1, 6, 0, 0, 1, 3, 2, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		spec := specFromBytes(data)
		_ = spec.LeakageClass() // total on every spec, valid or not
		client, err := Open(spec)
		if err != nil {
			return // invalid specs error; panics are the only failure
		}
		defer client.Close()

		// Canonical workload: read-your-writes over a prefix of the
		// address space. Runtime errors (stash overflow under a tiny
		// fuzzed capacity) abort the workload cleanly; data corruption
		// fails it.
		probe, err := client.Read(0)
		if err != nil {
			return
		}
		bs := len(probe)
		n := spec.Blocks
		if n > 48 {
			n = 48
		}
		payload := func(a uint64) []byte {
			p := make([]byte, bs)
			if bs >= 8 {
				binary.LittleEndian.PutUint64(p, a^0xa5a5a5a5)
			} else {
				for i := range p {
					p[i] = byte(a) ^ 0xa5
				}
			}
			return p
		}
		for a := uint64(0); a < n; a++ {
			if err := client.Write(a, payload(a)); err != nil {
				return
			}
		}
		for a := uint64(0); a < n; a++ {
			got, err := client.Read(a)
			if err != nil {
				return
			}
			if !bytes.Equal(got, payload(a)) {
				t.Fatalf("read-your-writes violated at %d: got %x want %x (spec %+v)", a, got, payload(a), spec)
			}
		}

		// Flush idempotence: the first Flush quiesces; the second must be
		// a no-op on an already-quiescent client, and contents survive.
		if err := client.Flush(); err != nil {
			t.Fatalf("first Flush: %v (spec %+v)", err, spec)
		}
		if p := client.PendingWriteBacks(); p != 0 {
			t.Fatalf("%d write-backs pending after Flush (spec %+v)", p, spec)
		}
		stBefore := client.Stats()
		if err := client.Flush(); err != nil {
			t.Fatalf("second Flush: %v (spec %+v)", err, spec)
		}
		if st := client.Stats(); st != stBefore {
			t.Fatalf("Flush on a quiescent client changed stats: %+v -> %+v (spec %+v)", stBefore, st, spec)
		}
		if got, err := client.Read(0); err != nil || !bytes.Equal(got, payload(0)) {
			t.Fatalf("contents changed across Flush: %x, %v (spec %+v)", got, err, spec)
		}

		// Close cleanliness: Close succeeds, leaves nothing deferred, and
		// a second Close does not panic.
		if err := client.Close(); err != nil {
			t.Fatalf("Close: %v (spec %+v)", err, spec)
		}
		if p := client.PendingWriteBacks(); p != 0 {
			t.Fatalf("%d write-backs pending after Close (spec %+v)", p, spec)
		}
		_ = client.Close()
	})
}
