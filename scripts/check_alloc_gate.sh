#!/bin/sh
# Runs the hot-path benchmark sweep and holds it to the zero-allocation
# contract: the serving path (core access -> encrypt -> store, and the
# sharded single-op path) must not allocate in steady state. The sweep's
# parsed results land in BENCH_pr6.json (or $1); the gate fails the build
# if any gated benchmark reports more than the budget below.
#
# Budget 1 (not 0): ultra-short CI runs can round pool warm-up and
# RunParallel goroutine setup to 1 alloc/op; anything above that is a real
# per-operation allocation on the hot path. BenchmarkAccessStrawmanEncrypted
# is deliberately outside the gate — the Section 2.2.1 strawman allocates
# per block by design.
#
# BenchmarkAccessRecursivePLBHit is in the gate (PR 8): the position-map
# lookaside cache's hit path resolves the leaf without touching the
# posmap ORAMs and must stay on the pooled-buffer discipline, so a warm
# all-hits run is held to the same allocs/op budget.
#
# BenchmarkSchedFRFCFS2Shard is in the gate (PR 9): the open-queue
# serving path — event rings, skip-mask pool, merged-window batch
# scratch, and the per-channel scheduling window — must reach steady
# state without per-op allocation, same as the in-order path it extends.
set -eu

out="${1:-BENCH_pr6.json}"
benchtime="${BENCHTIME:-2000x}"

go test -run xxx \
  -bench 'BenchmarkAccessMetadataOnly|BenchmarkAccessPlaintext|BenchmarkAccessCounterEncrypted|BenchmarkAccessConstantTimeStash|BenchmarkAccessRecursivePLBHit|BenchmarkShardedThroughput$|BenchmarkShardedThroughputEncrypted|BenchmarkShardedDRAM|BenchmarkSchedFRFCFS2Shard' \
  -benchtime "$benchtime" -benchmem . |
  go run ./cmd/oram-benchjson -out "$out" \
    -gate 'BenchmarkAccessPlaintext|BenchmarkAccessCounterEncrypted|BenchmarkAccessConstantTimeStash|BenchmarkAccessRecursivePLBHit|BenchmarkShardedThroughput|BenchmarkSchedFRFCFS2Shard' \
    -max-allocs 1

echo "wrote $out"

# The design-space report rides the same gate entry point (PR 7): run the
# explorer's smoke grid and schema-check its BENCH_pr7.json alongside the
# allocation sweep. Set SKIP_EXPLORE=1 to run the allocation gate alone.
if [ "${SKIP_EXPLORE:-0}" != 1 ]; then
  sh "$(dirname "$0")/check_explore_gate.sh" "${2:-BENCH_pr7.json}"
fi
