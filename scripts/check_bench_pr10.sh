#!/bin/sh
# Runs the persistent-backend benchmarks (PR 10) and holds them to the
# acceptance gate, all relative so nothing drifts with host hardware:
# the mmap'd file backend must stay within 3x of the in-memory
# counter-encrypted baseline (same geometry, so the ratio is pure storage
# overhead), write-ahead logging must cost something on top of the bare
# file (each op appends a log frame), and paying the epoch barrier inline
# (checkpoint every 32 ops) must cost more still. The file serving paths
# are simultaneously held to the zero-allocation budget (budget 1 absorbs
# warm-up rounding, as in check_alloc_gate.sh). Parsed results land in
# BENCH_pr10.json (or $1).
set -eu

out="${1:-BENCH_pr10.json}"
benchtime="${BENCHTIME:-2000x}"

go test -run xxx -bench 'BenchmarkAccessCounterEncrypted$|BenchmarkFileBackend' \
  -benchtime "$benchtime" -benchmem . |
  go run ./cmd/oram-benchjson -out "$out" \
    -gate 'BenchmarkFileBackendAccess|BenchmarkFileBackendWAL$' \
    -max-allocs 1 \
    -require 'BenchmarkFileBackendAccess:ns/op<3*BenchmarkAccessCounterEncrypted:ns/op' \
    -require 'BenchmarkFileBackendAccess:ns/op<BenchmarkFileBackendWAL:ns/op' \
    -require 'BenchmarkFileBackendWAL:ns/op<BenchmarkFileBackendWALEpochFlush:ns/op'

echo "wrote $out"
