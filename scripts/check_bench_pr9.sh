#!/bin/sh
# Runs the memory-controller scheduling comparison (PR 9) and holds it to
# the acceptance gate: on an identical 2-shard timed load, the FR-FCFS
# open command queue must beat the in-order baseline on modeled cycles
# per op, row-buffer hit rate, AND ops per modeled second — relative
# assertions, so the gate does not drift with host hardware. The queued
# hot path is simultaneously held to the zero-allocation budget (same
# rationale as check_alloc_gate.sh: budget 1 absorbs warm-up rounding).
# The parsed results land in BENCH_pr9.json (or $1).
set -eu

out="${1:-BENCH_pr9.json}"
benchtime="${BENCHTIME:-3000x}"

go test -run xxx -bench 'BenchmarkSchedInorder2Shard|BenchmarkSchedFRFCFS2Shard' \
  -benchtime "$benchtime" -benchmem . |
  go run ./cmd/oram-benchjson -out "$out" \
    -gate 'BenchmarkSchedInorder2Shard|BenchmarkSchedFRFCFS2Shard' \
    -max-allocs 1 \
    -require 'BenchmarkSchedFRFCFS2Shard:cycles/op<BenchmarkSchedInorder2Shard:cycles/op' \
    -require 'BenchmarkSchedFRFCFS2Shard:row-hit>BenchmarkSchedInorder2Shard:row-hit' \
    -require 'BenchmarkSchedFRFCFS2Shard:ops/modeled-s>BenchmarkSchedInorder2Shard:ops/modeled-s'

echo "wrote $out"
