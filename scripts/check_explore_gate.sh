#!/bin/sh
# Runs the design-space explorer's smoke grid (2 shard counts x 2
# position-map policies x 2 backends, uniform + zipf workloads) and holds
# the report to the PR 7 acceptance gate: the JSON must validate against
# the embedded schema, cover at least 8 distinct configurations, and
# carry a non-empty marked Pareto frontier over {p99 latency, cycles/op,
# on-chip bytes}. The report lands in BENCH_pr7.json (or $1) and is kept
# as a build artifact for before/after comparison.
#
# The pr8 grid rides the same entry point: the position-map acceleration
# sweep (PLB budget x Figure 5(b) overlap depth on a recursive
# dram-backed chain) must also complete and validate, covering its 4
# configurations x 2 workloads; its report lands in BENCH_pr8.json (or
# $2).
#
# The pr9 grid does too: the memory-controller sweep (inorder vs the
# FR-FCFS open queue at two depths, 2 shards on the timed backend) must
# complete and validate, covering its 3 configurations x 2 workloads;
# its report lands in BENCH_pr9-explore.json (or $3). The frfcfs points
# carry the ops/modeled-s column the paced loop headlines.
set -eu

out="${1:-BENCH_pr7.json}"
out8="${2:-BENCH_pr8.json}"
out9="${3:-BENCH_pr9-explore.json}"
ops="${EXPLORE_OPS:-512}"
warmup="${EXPLORE_WARMUP:-128}"

go run ./cmd/oram-explore -grid smoke -ops "$ops" -warmup "$warmup" -seed 1 -out "$out"
go run ./cmd/oram-explore -check "$out" -min-configs 8

echo "wrote $out"

go run ./cmd/oram-explore -grid pr8 -ops "$ops" -warmup "$warmup" -seed 1 -out "$out8"
go run ./cmd/oram-explore -check "$out8" -min-configs 4

echo "wrote $out8"

go run ./cmd/oram-explore -grid pr9 -ops "$ops" -warmup "$warmup" -seed 1 -out "$out9"
go run ./cmd/oram-explore -check "$out9" -min-configs 3

echo "wrote $out9"
