#!/bin/sh
# End-to-end smoke of cmd/oram-server over a real socket: start the
# server on a file+WAL backend with two tenants, drive write/read, the
# NDJSON batch endpoint and the stats endpoint through curl, check
# tenant isolation (bob must not see alice's plaintext), then SIGTERM it
# and assert the drain is clean — exit 0, the "drained cleanly" line,
# and every tenant's WAL truncated to zero by the final checkpoint.
set -eu

dir="${1:-$(mktemp -d)}"
addr="127.0.0.1:${PORT:-8471}"

go build -o "$dir/oram-server" ./cmd/oram-server
"$dir/oram-server" -addr "$addr" -storage file -dir "$dir/data" -wal \
  -tenants alice,bob -blocks 512 -blocksize 16 >"$dir/server.log" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

i=0
until curl -sf "http://$addr/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "server never came up:" && cat "$dir/server.log" && exit 1
  fi
  sleep 0.1
done

# 16 bytes, matching -blocksize; the wire carries base64.
payload=$(printf 'hello-smoke-0007' | base64)

curl -sf -X POST "http://$addr/v1/t/alice/write" \
  -d "{\"addr\":3,\"data\":\"$payload\"}" >/dev/null
curl -sf -X POST "http://$addr/v1/t/alice/read" -d '{"addr":3}' |
  grep -qF "$payload" || { echo "read-your-writes failed"; exit 1; }

# Tenant isolation: bob's address 3 is a different tree under a
# different derived key — alice's plaintext must not appear.
if curl -sf -X POST "http://$addr/v1/t/bob/read" -d '{"addr":3}' |
  grep -qF "$payload"; then
  echo "tenant isolation violated: bob read alice's block" && exit 1
fi

# NDJSON batch: one write + one read stream back two result lines, in
# order, with the read returning the just-written payload.
printf '{"op":"write","addr":5,"data":"%s"}\n{"op":"read","addr":5}\n' "$payload" |
  curl -sf -X POST --data-binary @- "http://$addr/v1/t/alice/batch" >"$dir/batch.out"
[ "$(wc -l <"$dir/batch.out")" -eq 2 ] || { echo "batch: want 2 result lines"; cat "$dir/batch.out"; exit 1; }
grep -qF "$payload" "$dir/batch.out" || { echo "batch read missed the write"; exit 1; }

# Admin surface: create a tenant over HTTP, list it, read its stats.
curl -sf -X PUT "http://$addr/v1/tenants/carol" >/dev/null
curl -sf "http://$addr/v1/tenants" | grep -q carol
curl -sf "http://$addr/v1/t/alice/stats" | grep -q '"tenant":"alice"'

# Graceful drain: SIGTERM must flush + checkpoint every tenant and exit 0.
kill -TERM "$pid"
wait "$pid"
trap - EXIT
grep -q "drained cleanly" "$dir/server.log" || { echo "no clean-drain line:"; cat "$dir/server.log"; exit 1; }
for wal in "$dir"/data/*/*.wal; do
  [ "$(wc -c <"$wal")" -eq 0 ] || { echo "WAL $wal not checkpointed on drain"; exit 1; }
done

echo "server smoke OK"
