package pathoram

import (
	"fmt"
	"math/rand"
)

// Client is the unified interface every top-level construction satisfies:
// the flat ORAM, the hierarchical Hierarchy (recursive position map,
// Section 2.3) and the sharded serving layer Sharded — and therefore every
// point of the paper's design space reachable through Open. Code written
// against Client composes the axes freely: the same workload runs against
// a flat tree, a recursive chain, or a sharded fleet of either, timed or
// untimed, by changing only the Spec that built the client.
//
// Concurrency: a Client built by Open is always safe for concurrent use
// (Open returns the serving layer). The bare constructors New and
// NewHierarchy return single-threaded Clients — one goroutine must own
// them, which is exactly the ownership the serving layer enforces when it
// uses them as shard engines.
type Client interface {
	// Read returns a copy of the block at addr (zero-filled if never
	// written). One oblivious access — one path per ORAM the construction
	// walks.
	Read(addr uint64) ([]byte, error)
	// ReadInto reads the block at addr into the caller-provided dst
	// (BlockBytes long), avoiding Read's per-call result allocation —
	// this is the allocation-free hot-path read. found reports whether
	// the block was ever written (always true under PartitionRandom,
	// whose relocation leg materializes every block it touches).
	ReadInto(addr uint64, dst []byte) (found bool, err error)
	// Write replaces the block at addr. One oblivious access.
	Write(addr uint64, data []byte) error
	// Update applies fn to the block's content in place in one oblivious
	// read-modify-write access.
	Update(addr uint64, fn func(data []byte)) error
	// Load is the exclusive read of Section 3.3.1: the block (and its
	// resident super-block group) is removed and handed to the caller.
	Load(addr uint64) (data []byte, found bool, group []Block, err error)
	// Store returns a checked-out block — straight into a stash, no path
	// access.
	Store(addr uint64, data []byte) error
	// ReadBatch reads every address in one submission; results stay in
	// input order. Sharded clients fan batches out across shards.
	ReadBatch(addrs []uint64) ([][]byte, error)
	// WriteBatch writes data[i] to addrs[i] in one submission.
	WriteBatch(addrs []uint64, data [][]byte) error
	// PaddingAccess performs one scheduler-padding dummy access,
	// indistinguishable on the memory bus from a real single operation.
	PaddingAccess() error
	// StepBackground performs one unit of deferred work (write-back
	// completion, or background eviction when allowed) and reports which.
	StepBackground(allowEviction bool) (BackgroundWork, error)
	// Flush completes all deferred work, leaving a state the synchronous
	// protocol could have produced.
	Flush() error
	// PendingWriteBacks counts deferred path write-backs not yet
	// completed.
	PendingWriteBacks() int
	// Stats returns the aggregate protocol counters (merged across
	// shards and hierarchy levels).
	Stats() Stats
	// ResetStats clears the protocol counters (occupancy gauges survive).
	ResetStats()
	// TimingStats returns the modeled memory-timing counters; the bool is
	// false when the construction runs untimed (BackendMem).
	TimingStats() (TimingStats, bool)
	// StashSize returns the current stash occupancy in blocks, summed
	// over every stash the construction owns.
	StashSize() int
	// OnChipBytes returns the construction's total trusted-memory
	// provision: on-chip position maps plus the static stash bounds of
	// every tree. One of the paper's design-space objectives — fixed at
	// construction, so it never serializes against traffic.
	OnChipBytes() uint64
	// ExternalMemoryBytes returns the external storage footprint.
	ExternalMemoryBytes() uint64
	// Close quiesces the client. Sharded clients drain in-flight work and
	// stop their workers (further operations fail with ErrClosed);
	// single-threaded clients flush and remain usable.
	Close() error
}

// Every top-level construction satisfies Client.
var (
	_ Client = (*ORAM)(nil)
	_ Client = (*Hierarchy)(nil)
	_ Client = (*Sharded)(nil)
)

// validateAddrs is the shared up-front batch validation: an out-of-range
// address fails the whole batch before any path is touched.
func validateAddrs(addrs []uint64, blocks uint64) error {
	for _, a := range addrs {
		if a >= blocks {
			return fmt.Errorf("pathoram: address %d out of range [0,%d)", a, blocks)
		}
	}
	return nil
}

// serialReadBatch implements the single-threaded half of the shared batch
// contract (ORAM and Hierarchy run requests back to back on the calling
// goroutine; Sharded fans out instead): validate up front, then execute
// every request, returning the first per-request failure with nil at
// failed slots.
func serialReadBatch(addrs []uint64, blocks uint64, read func(uint64) ([]byte, error)) ([][]byte, error) {
	if len(addrs) == 0 {
		return nil, nil
	}
	if err := validateAddrs(addrs, blocks); err != nil {
		return nil, err
	}
	results := make([][]byte, len(addrs))
	var first error
	for i, a := range addrs {
		out, err := read(a)
		if err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		results[i] = out
	}
	return results, first
}

// serialWriteBatch is serialReadBatch's write half: same validation and
// error contract; later writes to a duplicated address win, matching
// slice order.
func serialWriteBatch(addrs []uint64, data [][]byte, blocks uint64, write func(uint64, []byte) error) error {
	if len(addrs) != len(data) {
		return fmt.Errorf("pathoram: %d addresses for %d payloads", len(addrs), len(data))
	}
	if err := validateAddrs(addrs, blocks); err != nil {
		return err
	}
	var first error
	for i, a := range addrs {
		if err := write(a, data[i]); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PosMapPolicy selects where a Spec's position map lives — the recursion
// axis of the design space (Section 2.3).
type PosMapPolicy int

const (
	// PosMapOnChip keeps each shard's whole position map in trusted
	// memory: one flat Path ORAM per shard, 4 bytes of on-chip state per
	// block. The default.
	PosMapOnChip PosMapPolicy = iota
	// PosMapRecursive stores each shard's position map in a second,
	// smaller ORAM, recursively, until the final map fits in
	// OnChipPosMapMax bytes: one Hierarchy per shard. Every access then
	// walks the whole chain, smallest ORAM first — on-chip state shrinks
	// from O(N) to the fixed cap at the price of H path accesses per
	// operation.
	PosMapRecursive
)

// Spec is the declarative construction specification consumed by Open:
// one literal that composes the paper's design-space axes instead of
// three incompatible constructors. The three composition axes are
//
//	Shards:  how many independent trees serve the address space (the
//	         concurrency axis; 0/1 = a single tree behind the scheduler),
//	PosMap:  where the position map lives (the recursion axis —
//	         PosMapOnChip for flat trees, PosMapRecursive for a
//	         hierarchy per shard),
//	Backend: what the buckets cost (the timing axis — BackendMem for
//	         untimed functional serving, BackendDRAM to charge every
//	         bucket of every tree to one shared cycle-accurate DDR3
//	         model).
//
// Everything else parameterizes the trees themselves (sizes, encryption,
// integrity, the staged access path) or the scheduler (partition, queue
// depth, padded batches). A sharded recursive spec builds one Hierarchy
// per shard: per-shard keys derive from Key via the shard domain and
// per-level keys from those via the hierarchy domain, so no two trees
// anywhere share one-time pads; under BackendDRAM every level of every
// shard attaches its own port (disjoint physical region) to one shared
// memory bus.
type Spec struct {
	// Blocks is the total logical address space (required).
	Blocks uint64
	// BlockSize is the block payload in bytes (0 = metadata-only
	// simulation mode).
	BlockSize int

	// Shards is the number of independent per-shard engines behind the
	// request scheduler (default 1; must not exceed Blocks).
	Shards int
	// Partition selects the address split across shards (default
	// PartitionStripe; PartitionRandom hides request routing).
	Partition Partition
	// Padded switches batches to the fixed-shape padded schedule (see
	// ShardedConfig.Padded).
	Padded bool
	// QueueDepth is the per-shard request queue length (default 128).
	QueueDepth int
	// EvictionsPerIdle caps idle background evictions per gap (see
	// ShardedConfig.EvictionsPerIdle; meaningful with AsyncEviction).
	EvictionsPerIdle int

	// PosMap selects the position-map policy (default PosMapOnChip).
	PosMap PosMapPolicy
	// PosBlockSize is the position-map ORAM block size under
	// PosMapRecursive (default 32, the paper's practical choice).
	PosBlockSize int
	// OnChipPosMapMax bounds each shard's final on-chip map in bytes
	// under PosMapRecursive (default 200 KB, Section 4.1.5; the bound is
	// per shard).
	OnChipPosMapMax uint64
	// PosZ is the position-map ORAM bucket capacity under PosMapRecursive
	// (default 3).
	PosZ int
	// PLBBytes provisions a position-map lookaside cache per shard under
	// PosMapRecursive (Section 3.3.3; see HierarchyConfig.PLBBytes): hits
	// skip the elided chain levels, dirty labels write back on eviction
	// and Flush. 0 disables. The default mode leaks chain length per
	// access (SECURITY.md); see PLBConstantShape.
	PLBBytes uint64
	// PLBConstantShape pads every PLB hit with dummy-shaped accesses to
	// the elided levels — the oblivious endpoint of the PLB axis.
	// Requires PLBBytes > 0.
	PLBConstantShape bool
	// Overlap enables the Figure 5(b) speculative cross-request overlap of
	// the recursion chain under PosMapRecursive + BackendDRAM: up to
	// Overlap consecutive rounds pipeline across the chain's per-level
	// ports (see HierarchyConfig.Overlap). 0 keeps the serial 5(a) clock.
	Overlap int

	// Z is the (data) bucket capacity (default 3).
	Z int
	// Utilization sizes each data tree (default 0.5).
	Utilization float64
	// StashCapacity is C per ORAM in blocks (default 200).
	StashCapacity int
	// ConstantTimeStash makes every stash scan fixed-length and
	// branchless-masked on every tree in the construction, closing the
	// stash timing side channel (see Config.ConstantTimeStash). Results
	// are bit-identical to the default mode.
	ConstantTimeStash bool
	// SuperBlockSize statically merges adjacent blocks (Section 3.2).
	// Note super blocks group shard-local adjacency: combine with
	// PartitionRange when they should capture program locality.
	SuperBlockSize int
	// Encryption selects the bucket encryption (default counter-based).
	Encryption Encryption
	// Integrity enables the Section 5 authentication tree per tree.
	Integrity bool
	// Key is the 16-byte master secret; every shard (and every hierarchy
	// level within a shard) encrypts under an independently derived
	// subkey. Random if nil.
	Key []byte

	// AsyncEviction enables the staged access path on every engine:
	// respond after path read and merge, defer write-back I/O to idle
	// time (see Config.AsyncEviction).
	AsyncEviction bool
	// MaxDeferredWriteBacks caps each tree's deferred write-back queue —
	// under BackendDRAM, the modeled write-buffer depth.
	MaxDeferredWriteBacks int

	// Backend selects the storage cost model (default BackendMem;
	// BackendFile persists every tree under Dir).
	Backend Backend
	// Dir is the directory holding the tree (and WAL) files under
	// BackendFile: one file per tree, named per shard and per hierarchy
	// level. Required there, rejected elsewhere.
	Dir string
	// WAL wraps every tree file in a write-ahead log under BackendFile,
	// making the deferred write-back pipeline crash-consistent: logged
	// before acknowledged, checkpointed on Flush, replayed on reopen.
	WAL bool
	// WALDepth self-checkpoints each tree's log after that many path
	// frames (0 = only on Flush/Close). Requires WAL.
	WALDepth int
	// DRAMChannels, DRAMLayout, DRAMSerialize parameterize the shared
	// DDR3 model under BackendDRAM (see Config).
	DRAMChannels  int
	DRAMLayout    DRAMLayout
	DRAMSerialize bool
	// DRAMSched selects the controller's command scheduling under
	// BackendDRAM: MemSchedInOrder (default) or MemSchedFRFCFS, whose
	// open per-channel queue DRAMQueueDepth and DRAMStarveCap
	// parameterize (see Config).
	DRAMSched      MemSched
	DRAMQueueDepth int
	DRAMStarveCap  int

	// Rand makes the whole construction deterministic (simulation only);
	// independent per-shard, router and padding streams are derived from
	// it exactly as in NewSharded.
	Rand *rand.Rand
	// OnPathAccess, when set, observes every path every tree touches —
	// the adversary's full view: shard is the serving shard, level the
	// ORAM within its chain (0 = data ORAM; always 0 for PosMapOnChip).
	// Called from the shard worker goroutines; distinct shards invoke it
	// concurrently.
	OnPathAccess func(shard, level int, leaf uint64)
}

// LeakageClass tags what a composition leaks beyond the Path ORAM
// guarantee, factored along the two independent channels SECURITY.md's
// matrices analyze: what the request routing reveals to an adversary
// watching the shard schedule (A2), and what the stash scan's timing
// reveals to a co-resident adversary timing the controller (A1t). The
// design-space explorer reports it per config point so frontier tables
// compare like with like — a point is only better if it wins an objective
// without giving up a leakage class.
type LeakageClass struct {
	// Routing is what the request→shard schedule reveals, per the
	// SECURITY.md partition×mode table: "none" (single tree, or
	// random+padded — the schedule is a function of secret coins),
	// "reaccess-corr" (random, plain: only the same-block re-access
	// correlation), "demand-shape" (fixed partition, padded batches: the
	// schedule height tracks the busiest shard), "addr-bits" (stripe,
	// plain: log2 N address bits per request) or "addr-range" (range,
	// plain: coarse address bits per request).
	Routing string
	// Stash is what the stash scan's timing reveals: "scan-timing"
	// (default early-exit scans leak hit index and hit-vs-miss to A1t) or
	// "constant-time" (fixed-window masked scans close the channel).
	Stash string
}

// String renders the class in the compact "routing=…,stash=…" form the
// explorer's tables and BENCH_*.json use.
func (l LeakageClass) String() string {
	return "routing=" + l.Routing + ",stash=" + l.Stash
}

// LeakageClass classifies what the construction this Spec describes leaks,
// per SECURITY.md's matrices. It is a pure function of the composition
// axes (Partition, Padded, Shards, ConstantTimeStash) — no construction
// required — so sweeps can tag every grid point up front.
func (s Spec) LeakageClass() LeakageClass {
	l := LeakageClass{Routing: "none", Stash: "scan-timing"}
	if s.ConstantTimeStash {
		l.Stash = "constant-time"
	}
	if s.Shards > 1 {
		switch s.Partition {
		case PartitionRandom:
			if s.Padded {
				l.Routing = "none"
			} else {
				l.Routing = "reaccess-corr"
			}
		case PartitionRange:
			if s.Padded {
				l.Routing = "demand-shape"
			} else {
				l.Routing = "addr-range"
			}
		default: // PartitionStripe
			if s.Padded {
				l.Routing = "demand-shape"
			} else {
				l.Routing = "addr-bits"
			}
		}
	}
	return l
}

// Open builds the serving layer described by spec and returns it as a
// Client: N shards (flat trees or recursive hierarchies per PosMap)
// behind the batched request scheduler, on an untimed or shared-timed
// storage backend. Open is the one constructor that composes every axis;
// the bare constructors (New, NewHierarchy, NewSharded) remain supported
// for direct, single-construction use.
func Open(spec Spec) (Client, error) {
	cfg := ShardedConfig{
		Shards:           spec.Shards,
		Partition:        spec.Partition,
		Padded:           spec.Padded,
		QueueDepth:       spec.QueueDepth,
		EvictionsPerIdle: spec.EvictionsPerIdle,
		Config: Config{
			Blocks:                spec.Blocks,
			BlockSize:             spec.BlockSize,
			Z:                     spec.Z,
			Utilization:           spec.Utilization,
			StashCapacity:         spec.StashCapacity,
			ConstantTimeStash:     spec.ConstantTimeStash,
			SuperBlockSize:        spec.SuperBlockSize,
			Encryption:            spec.Encryption,
			Integrity:             spec.Integrity,
			Key:                   spec.Key,
			AsyncEviction:         spec.AsyncEviction,
			MaxDeferredWriteBacks: spec.MaxDeferredWriteBacks,
			Backend:               spec.Backend,
			DRAMChannels:          spec.DRAMChannels,
			DRAMLayout:            spec.DRAMLayout,
			DRAMSerialize:         spec.DRAMSerialize,
			DRAMSched:             spec.DRAMSched,
			DRAMQueueDepth:        spec.DRAMQueueDepth,
			DRAMStarveCap:         spec.DRAMStarveCap,
			Dir:                   spec.Dir,
			WAL:                   spec.WAL,
			WALDepth:              spec.WALDepth,
			Rand:                  spec.Rand,
		},
	}
	// Reject knobs that would be silently inert on the selected axis
	// values, so a design-space sweep never varies a field that changes
	// nothing (non-default DRAM knobs need the timed backend; recursion
	// knobs need the recursive position map).
	if spec.Backend != BackendDRAM &&
		(spec.DRAMChannels != 0 || spec.DRAMLayout != LayoutSubtree || spec.DRAMSerialize) {
		return nil, fmt.Errorf("pathoram: DRAMChannels/DRAMLayout/DRAMSerialize parameterize the timed backend; set Backend: BackendDRAM")
	}
	if spec.Backend != BackendDRAM && spec.DRAMSched != MemSchedInOrder {
		return nil, fmt.Errorf("pathoram: DRAMSched parameterizes the timed backend; set Backend: BackendDRAM")
	}
	if spec.DRAMSched != MemSchedFRFCFS && (spec.DRAMQueueDepth != 0 || spec.DRAMStarveCap != 0) {
		return nil, fmt.Errorf("pathoram: DRAMQueueDepth/DRAMStarveCap parameterize the open queue; set DRAMSched: MemSchedFRFCFS")
	}
	if spec.Backend != BackendFile && (spec.Dir != "" || spec.WAL || spec.WALDepth != 0) {
		return nil, fmt.Errorf("pathoram: Dir/WAL/WALDepth parameterize the persistent backend; set Backend: BackendFile")
	}
	if spec.Backend == BackendFile && spec.Dir == "" {
		return nil, fmt.Errorf("pathoram: BackendFile needs Dir (where the tree files live)")
	}
	if !spec.WAL && spec.WALDepth != 0 {
		return nil, fmt.Errorf("pathoram: WALDepth bounds the write-ahead log; set WAL: true")
	}
	switch spec.PosMap {
	case PosMapOnChip:
		if spec.PosBlockSize != 0 || spec.OnChipPosMapMax != 0 || spec.PosZ != 0 {
			return nil, fmt.Errorf("pathoram: PosBlockSize/OnChipPosMapMax/PosZ parameterize the recursive position map; set PosMap: PosMapRecursive")
		}
		if spec.PLBBytes != 0 || spec.PLBConstantShape || spec.Overlap != 0 {
			return nil, fmt.Errorf("pathoram: PLBBytes/PLBConstantShape/Overlap accelerate the recursive position-map chain; set PosMap: PosMapRecursive")
		}
		if spec.OnPathAccess != nil {
			hook := spec.OnPathAccess
			cfg.OnShardPathAccess = func(sh int, leaf uint64) { hook(sh, 0, leaf) }
		}
		return NewSharded(cfg)
	case PosMapRecursive:
		// The chain accelerations have their own mode requirements;
		// surface them here with Spec vocabulary rather than letting every
		// shard's constructor fail identically.
		if spec.PLBConstantShape && spec.PLBBytes == 0 {
			return nil, fmt.Errorf("pathoram: PLBConstantShape pads PLB hits; set PLBBytes > 0")
		}
		if spec.Overlap < 0 {
			return nil, fmt.Errorf("pathoram: Overlap must be >= 0")
		}
		if spec.Overlap > 0 {
			if spec.Backend != BackendDRAM {
				return nil, fmt.Errorf("pathoram: Overlap schedules modeled memory time; set Backend: BackendDRAM")
			}
			if spec.DRAMSerialize {
				return nil, fmt.Errorf("pathoram: Overlap and DRAMSerialize are contradictory schedules; drop one")
			}
		}
		// Position-map levels always carry payloads, so encryption
		// material is in play even for a metadata-only data ORAM.
		needKeys := spec.Encryption != EncryptNone
		return newSharded(cfg, needKeys, func(i int, sc Config) (clientEngine, error) {
			hc := HierarchyConfig{
				Blocks:                sc.Blocks,
				BlockSize:             sc.BlockSize,
				DataZ:                 sc.Z,
				PosZ:                  spec.PosZ,
				PosBlockSize:          spec.PosBlockSize,
				OnChipPosMapMax:       spec.OnChipPosMapMax,
				Utilization:           sc.Utilization,
				SuperBlockSize:        sc.SuperBlockSize,
				StashCapacity:         sc.StashCapacity,
				ConstantTimeStash:     sc.ConstantTimeStash,
				Encryption:            sc.Encryption,
				Key:                   sc.Key,
				Integrity:             sc.Integrity,
				AsyncEviction:         sc.AsyncEviction,
				MaxDeferredWriteBacks: sc.MaxDeferredWriteBacks,
				Backend:               sc.Backend,
				DRAMChannels:          sc.DRAMChannels,
				DRAMLayout:            sc.DRAMLayout,
				DRAMSerialize:         sc.DRAMSerialize,
				DRAMSched:             sc.DRAMSched,
				DRAMQueueDepth:        sc.DRAMQueueDepth,
				DRAMStarveCap:         sc.DRAMStarveCap,
				PLBBytes:              spec.PLBBytes,
				PLBConstantShape:      spec.PLBConstantShape,
				Overlap:               spec.Overlap,
				Dir:                   sc.Dir,
				WAL:                   sc.WAL,
				WALDepth:              sc.WALDepth,
				Rand:                  sc.Rand,
				bus:                   sc.bus,
				storeName:             sc.storeName,
			}
			if spec.OnPathAccess != nil {
				hook, sh := spec.OnPathAccess, i
				hc.OnPathAccess = func(level int, leaf uint64) { hook(sh, level, leaf) }
			}
			h, err := NewHierarchy(hc)
			if err != nil {
				return nil, err
			}
			return hierarchyEngine{h}, nil
		})
	default:
		return nil, fmt.Errorf("pathoram: unknown position-map policy %d", spec.PosMap)
	}
}
