// Command oram-ablate runs ablation studies that isolate the paper's
// design decisions beyond its printed figures: super-block size, the
// exclusive ORAM interface, the encryption schemes, stash capacity and
// DRAM channel scaling.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oram-ablate: ")
	var (
		ws   = flag.Uint64("ws", 1<<13, "working-set blocks for protocol measurements")
		seed = flag.Int64("seed", 41, "PRNG seed")
	)
	flag.Parse()

	sb := exp.DefaultSuperBlockAblation()
	sb.SimWorkingSet = *ws
	sb.Seed = *seed
	sbRes, err := exp.RunSuperBlockAblation(sb)
	check(err)
	fmt.Println(sbRes.Table())

	exRes, err := exp.RunExclusiveAblation(exp.DefaultExclusiveAblation())
	check(err)
	fmt.Println(exRes.Table())

	fmt.Println(exp.RunEncryptionAblation(1 << 25).Table())

	stash, err := exp.RunStashAblation(exp.DZ3Pb32SB, *ws, 1<<14,
		[]int{120, 160, 200, 300, 400}, *seed)
	check(err)
	fmt.Println(stash.Table())

	chs, err := exp.RunDRAMChannelScaling(exp.DZ3Pb32, 1<<25,
		[]int{1, 2, 4, 8}, 32, *seed)
	check(err)
	fmt.Println(chs.Table())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
