// Command oram-trace records synthetic benchmark traces to files and
// replays them through the processor model, so experiments can be repeated
// bit-identically or fed with externally produced traces in the same
// format (see internal/trace.Write for the encoding).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cpu"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oram-trace: ")
	var (
		record = flag.String("record", "", "benchmark profile to record (e.g. mcf)")
		replay = flag.String("replay", "", "trace file to replay through the CPU model")
		out    = flag.String("o", "trace.pot", "output file for -record")
		n      = flag.Int("n", 1_000_000, "instructions to record")
		seed   = flag.Int64("seed", 1, "PRNG seed for -record")
		list   = flag.Bool("list", false, "list available profiles")
	)
	flag.Parse()

	switch {
	case *list:
		for _, p := range trace.SPEC06() {
			fmt.Printf("%-12s memfrac=%.2f seq=%.2f chase=%.3f ws=%dMB\n",
				p.Name, p.MemFrac, p.SeqFrac, p.ChaseFrac, p.WorkingSet>>20)
		}
	case *record != "":
		p := trace.ProfileByName(*record)
		if p == nil {
			log.Fatalf("unknown profile %q (use -list)", *record)
		}
		instrs := trace.Record(p.Generator(*seed), *n)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.Write(f, instrs); err != nil {
			log.Fatal(err)
		}
		st, _ := f.Stat()
		fmt.Printf("recorded %d instructions of %s to %s (%.2f bytes/instr)\n",
			*n, *record, *out, float64(st.Size())/float64(*n))
	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		instrs, err := trace.Read(f)
		if err != nil {
			log.Fatal(err)
		}
		gen, err := trace.NewReplayer(instrs)
		if err != nil {
			log.Fatal(err)
		}
		mem := &cpu.ORAMMemory{ReturnLat: 1848, FinishLat: 3440} // DZ3Pb32, Table 2
		res, err := cpu.Run(cpu.Default(), gen, mem, uint64(len(instrs)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replayed %d instructions: CPI=%.2f MPKI=%.2f (DZ3Pb32 ORAM memory)\n",
			res.Instructions, res.CPI(), res.MPKI())
	default:
		flag.Usage()
		os.Exit(2)
	}
}
