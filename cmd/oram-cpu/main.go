// Command oram-cpu reproduces the secure-processor studies: Table 2 (ORAM
// latency and on-chip storage) and Figure 12 (benchmark slowdowns versus an
// insecure DRAM-based processor).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oram-cpu: ")
	var (
		table2 = flag.Bool("table2", true, "print Table 2")
		fig12  = flag.Bool("fig12", true, "run the Figure 12 benchmark study")
		instrs = flag.Uint64("instructions", 400_000, "measured instructions per benchmark")
		warmup = flag.Uint64("warmup", 400_000, "warm-up instructions per benchmark")
		simWS  = flag.Uint64("sim-ws", 1<<14, "working set (blocks) for dummy-rate measurement")
		seed   = flag.Int64("seed", 23, "PRNG seed")
	)
	flag.Parse()

	if *table2 {
		res, err := exp.RunTable2(exp.DefaultTable2())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Table())
	}
	if *fig12 {
		cfg := exp.DefaultFig12()
		cfg.Instructions = *instrs
		cfg.Warmup = *warmup
		cfg.SimWorkingSet = *simWS
		cfg.Seed = *seed
		res, err := exp.RunFig12(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Table())
		if imp, err := res.ImprovementVsBase("DZ3Pb32"); err == nil {
			fmt.Printf("DZ3Pb32 average runtime improvement vs baseORAM: %.1f%% (paper: 43.9%%)\n", 100*imp)
		}
		if imp, err := res.ImprovementVsBase("DZ4Pb32+SB"); err == nil {
			fmt.Printf("DZ4Pb32+SB average runtime improvement vs baseORAM: %.1f%% (paper: 52.4%%)\n", 100*imp)
		}
	}
}
