// Command oram-benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON file and gates the allocation budget of the hot
// serving path. CI pipes the benchmark sweep through it; the run fails if
// any gated benchmark's steady-state allocs/op exceeds the budget, so an
// allocation regression on the access path cannot land silently.
//
// Example:
//
//	go test -run xxx -bench 'Access|Sharded' -benchmem . |
//	    go run ./cmd/oram-benchjson -out BENCH_pr6.json \
//	        -gate 'BenchmarkAccessCounterEncrypted|BenchmarkShardedThroughputEncrypted' \
//	        -max-allocs 1
//
// The gate intentionally excludes the strawman encryption benchmark (the
// paper's Section 2.2.1 baseline allocates per block by design) — gate
// patterns name the benchmarks the zero-allocation contract covers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Metrics holds every reported
// "value unit" pair keyed by unit — ns/op, B/op, allocs/op, ops/s, plus
// any custom b.ReportMetric units the benchmark emitted.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted JSON document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("oram-benchjson: ")
	var (
		in        = flag.String("in", "", "benchmark output to parse (default stdin)")
		out       = flag.String("out", "", "JSON file to write (default stdout)")
		gate      = flag.String("gate", "", "regexp of benchmark names held to the allocation budget")
		maxAllocs = flag.Float64("max-allocs", 1, "max allocs/op a gated benchmark may report")
		requires  requireList
	)
	flag.Var(&requires, "require", "cross-benchmark metric assertion 'BenchA:metric<BenchB:metric' (or '>'); either side may be scaled 'K*Bench:metric'; repeatable, all must hold")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = f
	}
	rep, err := parse(src)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found in input")
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}

	if *gate != "" {
		re, err := regexp.Compile(*gate)
		if err != nil {
			log.Fatalf("bad -gate pattern: %v", err)
		}
		if err := check(rep.Benchmarks, re, *maxAllocs); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "oram-benchjson: allocation gate passed (budget %g allocs/op)\n", *maxAllocs)
	}
	for _, req := range requires {
		if err := requireMetric(rep.Benchmarks, req); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "oram-benchjson: requirement holds: %s\n", req)
	}
}

// requireList collects repeated -require flags.
type requireList []string

func (r *requireList) String() string { return strings.Join(*r, ",") }
func (r *requireList) Set(v string) error {
	*r = append(*r, v)
	return nil
}

// requireMetric enforces one 'BenchA:metric<BenchB:metric' assertion
// (or '>'): both benchmarks must be present, both must report the named
// metric, and the comparison must hold strictly. Either side may carry a
// constant scale 'K*BenchName:metric' — e.g.
// 'BenchmarkFileBackendAccess:ns/op<8*BenchmarkAccessCounterEncrypted:ns/op'
// pins a bounded slowdown ratio. This is how CI pins relative performance
// claims — e.g. that the FR-FCFS scheduler beats the in-order baseline on
// modeled cycles per op — instead of absolute thresholds that drift with
// hardware.
func requireMetric(benches []Benchmark, expr string) error {
	opIdx := strings.IndexAny(expr, "<>")
	if opIdx < 0 {
		return fmt.Errorf("bad -require %q: want 'BenchA:metric<BenchB:metric' or '>'", expr)
	}
	op := expr[opIdx]
	lookup := func(side string) (float64, error) {
		scale := 1.0
		if k, rest, ok := strings.Cut(side, "*"); ok {
			f, err := strconv.ParseFloat(k, 64)
			if err != nil {
				return 0, fmt.Errorf("bad -require scale %q: want a number before '*'", k)
			}
			scale, side = f, rest
		}
		name, metric, ok := strings.Cut(side, ":")
		if !ok {
			return 0, fmt.Errorf("bad -require side %q: want '[K*]BenchName:metric'", side)
		}
		for _, b := range benches {
			if b.Name != name {
				continue
			}
			v, ok := b.Metrics[metric]
			if !ok {
				return 0, fmt.Errorf("%s reports no %q metric", name, metric)
			}
			return scale * v, nil
		}
		return 0, fmt.Errorf("benchmark %q not found in input", name)
	}
	lhs, err := lookup(expr[:opIdx])
	if err != nil {
		return err
	}
	rhs, err := lookup(expr[opIdx+1:])
	if err != nil {
		return err
	}
	holds := lhs < rhs
	if op == '>' {
		holds = lhs > rhs
	}
	if !holds {
		return fmt.Errorf("requirement failed: %s (%g %c %g does not hold)", expr, lhs, rune(op), rhs)
	}
	return nil
}

// check fails if a gated benchmark exceeds the allocation budget — or if
// the gate matches nothing, so a benchmark rename cannot silently disarm
// it. A matching benchmark that reports no allocs/op at all (missing
// -benchmem or b.ReportAllocs) also fails.
func check(benches []Benchmark, re *regexp.Regexp, budget float64) error {
	matched := 0
	var violations []string
	for _, b := range benches {
		if !re.MatchString(b.Name) {
			continue
		}
		matched++
		allocs, ok := b.Metrics["allocs/op"]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s reports no allocs/op (run with -benchmem)", b.Name))
			continue
		}
		if allocs > budget {
			violations = append(violations, fmt.Sprintf("%s: %g allocs/op exceeds budget %g", b.Name, allocs, budget))
		}
	}
	if matched == 0 {
		return fmt.Errorf("gate %q matched no benchmarks — renamed without updating the gate?", re)
	}
	if len(violations) > 0 {
		return fmt.Errorf("allocation gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}

// procSuffix is the -GOMAXPROCS suffix go test appends to parallel
// benchmark names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parse reads `go test -bench` text output. Result lines look like
//
//	BenchmarkName-8   \t  2000 \t 2622 ns/op \t 0 B/op \t 0 allocs/op
//
// with any number of trailing "value unit" metric pairs.
func parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkFoo ... --- FAIL" shapes
		}
		b := Benchmark{
			// Strip the -GOMAXPROCS suffix so gates match stable names.
			Name:       procSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}
