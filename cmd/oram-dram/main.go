// Command oram-dram reproduces the DRAM studies: Figure 11 (naive vs
// subtree placement vs theoretical bandwidth across channel counts) and
// the Figure 5 access-ordering comparison (-orders).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oram-dram: ")
	var (
		ws       = flag.Uint64("ws", 1<<25, "working-set blocks for hierarchy sizing (paper: 2^25)")
		accesses = flag.Int("accesses", 64, "ORAM accesses per measurement")
		orders   = flag.Bool("orders", false, "also compare the Figure 5 access orderings")
		seed     = flag.Int64("seed", 13, "PRNG seed")
	)
	flag.Parse()

	cfg := exp.DefaultFig11()
	cfg.WorkingSet = *ws
	cfg.Accesses = *accesses
	cfg.Seed = *seed
	res, err := exp.RunFig11(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table())

	if *orders {
		f5, err := exp.RunFig5(exp.DZ3Pb32, *ws, 2, *accesses, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(f5.Table())
	}
}
