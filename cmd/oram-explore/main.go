// Command oram-explore runs the Path ORAM design-space explorations of
// Section 4.1: stash occupancy (Figure 3), dummy-access ratios (Figure 7),
// the utilization sweep (Figure 8), the capacity sweep (Figure 9) and the
// hierarchical overhead breakdown (Figure 10).
//
// Problem sizes default to scaled-down working sets that finish in seconds;
// raise -ws (and be patient) to approach paper scale.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oram-explore: ")
	var (
		fig      = flag.Int("fig", 0, "figure to reproduce: 3, 7, 8, 9 or 10 (0 = all)")
		ws       = flag.Uint64("ws", 0, "working-set blocks (0 = per-figure default)")
		perBlock = flag.Int("accesses-per-block", 0, "accesses per block (paper: 10; 0 = default)")
		seed     = flag.Int64("seed", 1, "PRNG seed")
	)
	flag.Parse()

	run := func(f int) {
		switch f {
		case 3:
			cfg := exp.DefaultFig3()
			apply3(&cfg, *ws, *perBlock, *seed)
			res, err := exp.RunFig3(cfg)
			check(err)
			fmt.Println(res.Table())
		case 7:
			cfg := exp.DefaultFig7()
			if *ws != 0 {
				cfg.WorkingSetBlocks = *ws
			}
			if *perBlock != 0 {
				cfg.AccessesPerBlock = *perBlock
			}
			cfg.Seed = *seed
			res, err := exp.RunFig7(cfg)
			check(err)
			fmt.Println(res.Table())
		case 8:
			cfg := exp.DefaultFig8()
			if *ws != 0 {
				cfg.WorkingSetBlocks = *ws
			}
			if *perBlock != 0 {
				cfg.AccessesPerBlock = *perBlock
			}
			cfg.Seed = *seed
			res, err := exp.RunFig8(cfg)
			check(err)
			fmt.Println(res.Table())
			if best := res.Best(); best != nil {
				fmt.Printf("best configuration: Z=%d at %.0f%% utilization (overhead %.1f)\n\n",
					best.Z, 100*best.Utilization, best.Overhead)
			}
		case 9:
			cfg := exp.DefaultFig9()
			if *perBlock != 0 {
				cfg.AccessesPerBlock = *perBlock
			}
			cfg.Seed = *seed
			res, err := exp.RunFig9(cfg)
			check(err)
			fmt.Println(res.Table())
		case 10:
			cfg := exp.DefaultFig10()
			if *ws != 0 {
				cfg.SimWorkingSet = *ws
			}
			cfg.Seed = *seed
			res, err := exp.RunFig10(cfg)
			check(err)
			fmt.Println(res.Table())
			if red, err := res.ReductionVsBase("DZ3Pb32"); err == nil {
				fmt.Printf("DZ3Pb32 overhead reduction vs baseORAM: %.1f%% (paper: 41.8%%)\n", 100*red)
			}
			if red, err := res.ReductionVsBase("DZ4Pb32"); err == nil {
				fmt.Printf("DZ4Pb32 overhead reduction vs baseORAM: %.1f%% (paper: 35.0%%)\n\n", 100*red)
			}
		default:
			log.Printf("unknown figure %d", f)
			os.Exit(2)
		}
	}
	if *fig == 0 {
		for _, f := range []int{3, 7, 8, 9, 10} {
			run(f)
		}
		return
	}
	run(*fig)
}

func apply3(cfg *exp.Fig3Config, ws uint64, perBlock int, seed int64) {
	if ws != 0 {
		cfg.WorkingSetBlocks = ws
	}
	if perBlock != 0 {
		cfg.AccessesPerBlock = perBlock
	}
	cfg.Seed = seed
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
