// Command oram-explore runs the Path ORAM design-space explorations of
// Section 4.1: stash occupancy (Figure 3), dummy-access ratios (Figure 7),
// the utilization sweep (Figure 8), the capacity sweep (Figure 9) and the
// hierarchical overhead breakdown (Figure 10).
//
// Problem sizes default to scaled-down working sets that finish in seconds;
// raise -ws (and be patient) to approach paper scale.
//
// -grid switches to the automated design-space explorer: it sweeps a
// declarative configuration grid (a preset name or a JSON file, see
// internal/explore.Grid) under the workload suite, marks the Pareto
// frontier over {p99 latency, modeled cycles/op, on-chip bytes}, prints
// the frontier table and writes a schema-validated JSON report:
//
//	oram-explore -grid smoke -out BENCH_pr7.json
//	oram-explore -check BENCH_pr7.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/explore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oram-explore: ")
	var (
		fig        = flag.Int("fig", 0, "figure to reproduce: 3, 7, 8, 9 or 10 (0 = all)")
		ws         = flag.Uint64("ws", 0, "working-set blocks (0 = per-figure default)")
		perBlock   = flag.Int("accesses-per-block", 0, "accesses per block (paper: 10; 0 = default)")
		seed       = flag.Int64("seed", 1, "PRNG seed")
		grid       = flag.String("grid", "", "design-space sweep: preset (smoke|full) or a JSON grid file; replaces the figure modes")
		out        = flag.String("out", "BENCH_pr7.json", "report path for -grid")
		ops        = flag.Int("ops", 2048, "measured operations per (config, workload) cell (with -grid)")
		warmup     = flag.Int("warmup", 256, "unmeasured warm-up operations per cell (with -grid)")
		batch      = flag.Int("batch", 16, "submission batch size for padded configs (with -grid)")
		checkPath  = flag.String("check", "", "validate an existing report against the embedded schema and exit")
		minConfigs = flag.Int("min-configs", 0, "with -check: minimum distinct configurations the report must cover")
	)
	flag.Parse()

	if *checkPath != "" {
		runCheck(*checkPath, *minConfigs)
		return
	}
	if *grid != "" {
		runGrid(*grid, *out, explore.Options{Ops: *ops, Warmup: *warmup, Batch: *batch, Seed: *seed})
		return
	}

	run := func(f int) {
		switch f {
		case 3:
			cfg := exp.DefaultFig3()
			apply3(&cfg, *ws, *perBlock, *seed)
			res, err := exp.RunFig3(cfg)
			check(err)
			fmt.Println(res.Table())
		case 7:
			cfg := exp.DefaultFig7()
			if *ws != 0 {
				cfg.WorkingSetBlocks = *ws
			}
			if *perBlock != 0 {
				cfg.AccessesPerBlock = *perBlock
			}
			cfg.Seed = *seed
			res, err := exp.RunFig7(cfg)
			check(err)
			fmt.Println(res.Table())
		case 8:
			cfg := exp.DefaultFig8()
			if *ws != 0 {
				cfg.WorkingSetBlocks = *ws
			}
			if *perBlock != 0 {
				cfg.AccessesPerBlock = *perBlock
			}
			cfg.Seed = *seed
			res, err := exp.RunFig8(cfg)
			check(err)
			fmt.Println(res.Table())
			if best := res.Best(); best != nil {
				fmt.Printf("best configuration: Z=%d at %.0f%% utilization (overhead %.1f)\n\n",
					best.Z, 100*best.Utilization, best.Overhead)
			}
		case 9:
			cfg := exp.DefaultFig9()
			if *perBlock != 0 {
				cfg.AccessesPerBlock = *perBlock
			}
			cfg.Seed = *seed
			res, err := exp.RunFig9(cfg)
			check(err)
			fmt.Println(res.Table())
		case 10:
			cfg := exp.DefaultFig10()
			if *ws != 0 {
				cfg.SimWorkingSet = *ws
			}
			cfg.Seed = *seed
			res, err := exp.RunFig10(cfg)
			check(err)
			fmt.Println(res.Table())
			if red, err := res.ReductionVsBase("DZ3Pb32"); err == nil {
				fmt.Printf("DZ3Pb32 overhead reduction vs baseORAM: %.1f%% (paper: 41.8%%)\n", 100*red)
			}
			if red, err := res.ReductionVsBase("DZ4Pb32"); err == nil {
				fmt.Printf("DZ4Pb32 overhead reduction vs baseORAM: %.1f%% (paper: 35.0%%)\n\n", 100*red)
			}
		default:
			log.Printf("unknown figure %d", f)
			os.Exit(2)
		}
	}
	if *fig == 0 {
		for _, f := range []int{3, 7, 8, 9, 10} {
			run(f)
		}
		return
	}
	run(*fig)
}

func apply3(cfg *exp.Fig3Config, ws uint64, perBlock int, seed int64) {
	if ws != 0 {
		cfg.WorkingSetBlocks = ws
	}
	if perBlock != 0 {
		cfg.AccessesPerBlock = perBlock
	}
	cfg.Seed = seed
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// runCheck validates an existing report file against the embedded
// schema's constraints and additionally requires a non-empty marked
// Pareto frontier and (when minConfigs > 0) a minimum sweep breadth —
// the properties CI's explore-smoke job gates on.
func runCheck(path string, minConfigs int) {
	data, err := os.ReadFile(path)
	check(err)
	check(explore.ValidateReport(data))
	var rep explore.Report
	check(json.Unmarshal(data, &rep))
	frontier := 0
	configs := map[string]bool{}
	for _, b := range rep.Benchmarks {
		if b.Pareto {
			frontier++
		}
		configs[b.Config] = true
	}
	if frontier == 0 {
		log.Fatalf("%s: no Pareto-marked rows — the frontier must be non-empty", path)
	}
	if len(configs) < minConfigs {
		log.Fatalf("%s: %d distinct configurations, gate requires >= %d", path, len(configs), minConfigs)
	}
	fmt.Printf("%s: schema-valid, %d rows over %d configurations, %d on the Pareto frontier\n",
		path, len(rep.Benchmarks), len(configs), frontier)
}

// runGrid sweeps the grid, marks the frontier, prints the table and
// writes the report.
func runGrid(gridName, outPath string, opts explore.Options) {
	g, err := explore.LoadGrid(gridName)
	check(err)
	rows, err := explore.Run(g, opts, log.Printf)
	check(err)
	explore.MarkPareto(rows, explore.Objectives)

	rep := explore.NewReport(gridName, explore.Objectives, rows)
	data, err := json.MarshalIndent(rep, "", "  ")
	check(err)
	check(explore.ValidateReport(data))
	check(os.WriteFile(outPath, append(data, '\n'), 0o644))

	front := explore.Frontier(rows)
	fmt.Printf("\n%d configurations x workloads measured; %d on the Pareto frontier over {%s}\n\n",
		len(rows), len(front), strings.Join(explore.Objectives, ", "))
	w := newTable(os.Stdout)
	w.row("workload", "config", "p99-ns", "cycles/op", "onchip-B", "ns/op", "leakage")
	for _, r := range front {
		w.row(r.Workload, r.Config,
			metric(r, "p99-ns"), metric(r, "cycles/op"), metric(r, "onchip-B"),
			metric(r, "ns/op"), r.Leakage)
	}
	w.flush()
	fmt.Printf("\nreport written to %s (validate with -check %s)\n", outPath, outPath)
}

func metric(r explore.Row, key string) string {
	v, ok := r.Metrics[key]
	if !ok {
		return "-"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// table is a minimal right-aligned column printer (same shape as
// cmd/oram-serve's).
type table struct {
	out  *os.File
	rows [][]string
}

func newTable(out *os.File) *table { return &table{out: out} }

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) flush() {
	if len(t.rows) == 0 {
		return
	}
	widths := make([]int, len(t.rows[0]))
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			fmt.Fprintf(t.out, "%*s  ", widths[i], c)
		}
		fmt.Fprintln(t.out)
	}
}
