// Command oram-server serves multi-tenant ORAM over HTTP: one
// pathoram.Client per tenant (per-tenant keys derived from a service
// master through the domain-separated KDF), the construction axes shared
// with oram-serve/oram-explore via the internal/explore flag set, and a
// graceful drain on SIGTERM/SIGINT — in-flight requests finish, then
// every tenant flushes, checkpoints its WAL and closes its tree files.
// A failed drain (e.g. a file-backend Sync error) exits non-zero.
//
// Example — two durable tenants on a file+WAL backend:
//
//	oram-server -addr 127.0.0.1:8470 -storage file -dir /var/lib/oram -wal \
//	    -tenants alice,bob -blocks 16384 -blocksize 64 -async
//
// See internal/service.Handler for the endpoint list.
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/explore"
	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oram-server: ")
	var sf explore.SpecFlags
	sf.AddFlags(flag.CommandLine)
	var (
		addr     = flag.String("addr", "127.0.0.1:8470", "listen address")
		shards   = flag.Int("shards", 1, "shards per tenant")
		tenants  = flag.String("tenants", "", "comma-separated tenant names to create at startup (more via PUT /v1/tenants/{name})")
		maxTen   = flag.Int("max-tenants", 0, "tenant admission limit (0 = 64)")
		keyHex   = flag.String("master-key", "", "hex service master key, 32 hex chars (empty = drawn fresh; supply it for durable deployments, or nothing sealed by a previous process can be desealed)")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "bound on waiting out in-flight HTTP requests during shutdown")
	)
	flag.Parse()
	if err := sf.CheckExplicit(explore.Explicit(flag.CommandLine)); err != nil {
		log.Fatal(err)
	}
	spec, err := sf.Spec(*shards)
	if err != nil {
		log.Fatal(err)
	}
	var master []byte
	if *keyHex != "" {
		if master, err = hex.DecodeString(*keyHex); err != nil {
			log.Fatalf("parsing -master-key: %v", err)
		}
	}
	svc, err := service.New(service.Config{Template: spec, MasterKey: master, MaxTenants: *maxTen})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range strings.Split(*tenants, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		if _, err := svc.Create(name); err != nil {
			log.Fatalf("creating tenant %q: %v", name, err)
		}
		log.Printf("tenant %q ready", name)
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s (%d blocks x %dB, %d shards/tenant, storage=%s, wal=%v, async=%v)",
		*addr, sf.Blocks, sf.BlockSize, *shards, sf.Storage, sf.WAL, sf.Async)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		// The listener died on its own; still drain the tenants so a
		// durable deployment is left checkpointed.
		svc.Close() //nolint:errcheck // the listener error is the headline
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()

	// Drain: stop accepting, wait out in-flight requests, then close every
	// tenant (Flush → WAL checkpoint → file close). Either failure is a
	// non-zero exit — a dropped final checkpoint must not look clean.
	log.Print("draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	shutErr := srv.Shutdown(shutCtx)
	if errors.Is(shutErr, http.ErrServerClosed) {
		shutErr = nil
	}
	closeErr := svc.Close()
	if shutErr != nil || closeErr != nil {
		log.Fatal(errors.Join(shutErr, closeErr))
	}
	fmt.Println("oram-server: drained cleanly")
}
