// Command oram-attack mounts the Figure 4 common-path-length attack on the
// insecure block-remapping eviction scheme (Section 3.1.3) and shows that
// the paper's background eviction is indistinguishable from uniform.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oram-attack: ")
	var (
		experiments = flag.Int("experiments", 100, "number of experiments (paper: 100)")
		accesses    = flag.Int("accesses", 3000, "real accesses per experiment")
		seed        = flag.Int64("seed", 7, "PRNG seed")
	)
	flag.Parse()

	cfg := exp.DefaultFig4()
	cfg.Experiments = *experiments
	cfg.Accesses = *accesses
	cfg.Seed = *seed
	res, err := exp.RunFig4(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table())
	fmt.Printf("secure dummy rate: %.2f per real access; insecure eviction rate: %.2f\n",
		res.SecureDummyRate, res.InsecureEvictRate)
}
