package main

import (
	"testing"

	pathoram "repro"
)

// TestPacedAdmitSchedulesInterval pins the pacer's contract: the first
// op is admitted immediately, the next only once the modeled clock has
// advanced past admission + interval, and each admission reschedules
// from the admitting clock (a late clock does not owe back-to-back
// catch-up ops).
func TestPacedAdmitSchedulesInterval(t *testing.T) {
	p := &pacer{interval: 100}
	if !p.admit(0) {
		t.Fatal("first op must be admitted at clock 0")
	}
	for _, now := range []uint64{1, 50, 99} {
		if p.admit(now) {
			t.Fatalf("admitted at clock %d, before the interval elapsed", now)
		}
	}
	if !p.admit(250) {
		t.Fatal("not admitted after the interval elapsed")
	}
	// Rescheduled from the admitting clock (250), not the missed slot (100).
	if p.admit(349) {
		t.Fatal("admitted at 349; next slot should be 250+100")
	}
	if !p.admit(350) {
		t.Fatal("not admitted at the rescheduled slot")
	}
}

// TestPacedSkipIdleUnblocks pins the deadlock escape: skipIdle pulls the
// next slot back to the stalled clock so the very next admit succeeds.
func TestPacedSkipIdleUnblocks(t *testing.T) {
	p := &pacer{interval: 1000}
	if !p.admit(0) {
		t.Fatal("first op must be admitted")
	}
	if p.admit(10) {
		t.Fatal("clock 10 is inside the think interval")
	}
	p.skipIdle(10)
	if !p.admit(10) {
		t.Fatal("skipIdle must make the stalled clock admissible")
	}
}

// TestPacedClosedLoopRuns drives the real paced loop end to end on a
// small dram-backed config: the run must terminate (the idle-skip path
// bounds every stall), report a modeled-throughput column, and the
// modeled frontier must have advanced.
func TestPacedClosedLoopRuns(t *testing.T) {
	spec := pathoram.Spec{
		Blocks: 256, BlockSize: 32,
		Shards:       2,
		Backend:      pathoram.BackendDRAM,
		DRAMChannels: 2,
		DRAMSched:    pathoram.MemSchedFRFCFS,
	}
	res, err := runConfig(spec, load{
		clients: 4, ops: 64, writeFrac: 0.5,
		paced: true, mthink: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	// modelOps is only populated when the measured traffic advanced the
	// modeled clock, so this also pins that the frontier moved.
	if res.modelOps == "-" {
		t.Fatal("paced dram run reported no model-ops/s column")
	}
	if res.rowHit == "-" {
		t.Fatal("paced dram run reported no timing columns")
	}
}
