// Command oram-serve measures the sharded serving layer: closed-loop
// throughput versus shard count under concurrent client load, with
// single-op and batched submission modes. The speedup column against the
// first shard count in the sweep is the headline sharding gain.
//
// Example:
//
//	oram-serve -blocks 16384 -blocksize 64 -shards 1,2,4,8 -clients 8 -ops 40000
//
// The oblivious routing modes (SECURITY.md) are driven by -partition and
// -padded; the pad/real column then reports the measured padding overhead:
//
//	oram-serve -partition random -batch 64 -padded
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	pathoram "repro"
	"repro/internal/explore"
	"repro/internal/membus"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oram-serve: ")
	// The Spec axes come from the shared flag set in internal/explore, so
	// oram-serve and oram-explore cannot drift on names or defaults; only
	// the load-generation knobs are registered here.
	var sf explore.SpecFlags
	sf.AddFlags(flag.CommandLine)
	var (
		shardsCSV = flag.String("shards", "1,2,4,8", "comma-separated shard counts to sweep")
		clients   = flag.Int("clients", 8, "concurrent closed-loop clients")
		ops       = flag.Int("ops", 40000, "total operations per configuration")
		batch     = flag.Int("batch", 0, "ops per batched submission (0 = single ops)")
		writeFrac = flag.Float64("writefrac", 0.5, "fraction of operations that are writes")
		think     = flag.Duration("think", 0, "client think time between operations (open-loop pacing; idle time is where -async wins)")
		paced     = flag.Bool("paced", false, "cycle-paced closed loop: admit each client's next op when the modeled DDR3 clock reaches its slot, making model-ops/s the headline metric (requires -backend dram)")
		mthink    = flag.Uint64("mthink", 2000, "modeled think cycles between a client's operations (with -paced)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the measured load phase (pre-fill excluded) to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile taken after the measured load phase to this file")
	)
	flag.Parse()

	explicit := explore.Explicit(flag.CommandLine)
	if err := sf.CheckExplicit(explicit); err != nil {
		log.Fatal(err)
	}
	if sf.Padded && *batch <= 0 {
		log.Fatal("-padded pads batch schedules; combine it with -batch > 0")
	}
	if *paced && sf.Backend != "dram" {
		log.Fatal("-paced admits ops by modeled memory time; combine it with -backend dram")
	}
	if explicit["mthink"] && !*paced {
		log.Fatal("-mthink sets modeled think cycles for the paced loop; combine it with -paced")
	}
	shardCounts, err := parseInts(*shardsCSV)
	if err != nil {
		log.Fatalf("parsing -shards: %v", err)
	}
	if (*cpuProf != "" || *memProf != "") && len(shardCounts) > 1 {
		log.Fatal("-cpuprofile/-memprofile capture one configuration; pass a single -shards value")
	}

	fmt.Printf("oram-serve: %d blocks x %dB, %s encryption, integrity=%v, partition=%s, posmap=%s, padded=%v, async=%v\n",
		sf.Blocks, sf.BlockSize, sf.Encrypt, sf.Integrity, sf.Partition, sf.PosMap, sf.Padded, sf.Async)
	if sf.Recursive() {
		fmt.Printf("posmap: recursive (%dB posmap blocks, %dB on-chip bound per shard)\n", sf.PosBlock, sf.OnChipMax)
		if sf.PLBBytes > 0 {
			fmt.Printf("plb: %dB per shard, constant-shape=%v\n", sf.PLBBytes, sf.PLBConst)
		}
		if sf.Overlap > 0 {
			fmt.Printf("overlap: %d requests pipeline across the posmap chain (Figure 5(b))\n", sf.Overlap)
		}
	}
	if sf.Backend == "dram" {
		depth := sf.MaxDefer
		if depth == 0 {
			depth = 8 // core.DefaultMaxDeferredWriteBacks, the resolved value
		}
		fmt.Printf("backend: dram (%d channels, %s layout, serialize=%v, write-buffer depth=%d)\n",
			sf.Channels, sf.Layout, sf.DRAMSer, depth)
		if sf.MemSched == "frfcfs" {
			qd, sc := sf.MemQueue, sf.StarveCap
			if qd == 0 {
				qd = 8 // dram.DefaultQueueDepth, the resolved value
			}
			if sc == 0 {
				sc = 4 // dram.DefaultStarvationCap
			}
			fmt.Printf("sched: frfcfs (open command queue depth=%d, starvation cap=%d)\n", qd, sc)
		}
		if *paced {
			fmt.Printf("paced: closed loop on the modeled clock, think=%d cycles/op\n", *mthink)
		}
	}
	if sf.Storage == "file" {
		fmt.Printf("storage: file (dir=%s, wal=%v, wal-depth=%d) — latencies include real I/O\n",
			sf.Dir, sf.WAL, sf.WALDepth)
	}
	fmt.Printf("load: %d clients, %d ops/config, batch=%d, writefrac=%.2f, think=%v, GOMAXPROCS=%d\n\n",
		*clients, *ops, *batch, *writeFrac, *think, runtime.GOMAXPROCS(0))

	w := newTable(os.Stdout)
	w.row("shards", "levels", "posmap-B", "plb-hit", "chain-len", "wall", "ops/s", "speedup", "p50", "p95", "p99", "dummy/real", "pad/real", "stash-peak", "imbalance", "row-hit", "B/cyc", "rd-cyc", "Mcycles", "model-ops/s")
	var baseline float64
	for _, n := range shardCounts {
		// One Spec covers the whole sweep: sharding, position-map recursion
		// and the timed backend are axes of the same constructor.
		spec, err := sf.Spec(n)
		if err != nil {
			log.Fatal(err)
		}
		if spec.Backend == pathoram.BackendFile {
			// Tree-file geometry depends on the shard count, so each sweep
			// point gets its own subdirectory under -dir.
			spec.Dir = filepath.Join(spec.Dir, fmt.Sprintf("shards%d", n))
		}
		res, err := runConfig(spec, load{
			clients: *clients, ops: *ops, batch: *batch, writeFrac: *writeFrac,
			think: *think, paced: *paced, mthink: *mthink,
			cpuProfile: *cpuProf, memProfile: *memProf,
		})
		if err != nil {
			log.Fatalf("shards=%d: %v", n, err)
		}
		if baseline == 0 {
			baseline = res.opsPerSec
		}
		w.row(
			strconv.Itoa(n),
			strconv.Itoa(res.levels),
			strconv.FormatUint(res.posmapBytes, 10),
			res.plbHit, res.chainLen,
			res.wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", res.opsPerSec),
			fmt.Sprintf("%.2fx", res.opsPerSec/baseline),
			res.p50.Round(time.Microsecond).String(),
			res.p95.Round(time.Microsecond).String(),
			res.p99.Round(time.Microsecond).String(),
			fmt.Sprintf("%.3f", res.dummyPerReal),
			fmt.Sprintf("%.3f", res.padPerReal),
			strconv.Itoa(res.stashPeak),
			fmt.Sprintf("%.2f", res.imbalance),
			res.rowHit, res.bytesPerCyc, res.readCyc, res.mcycles, res.modelOps,
		)
	}
	w.flush()
	fmt.Println("\nlevels    = ORAMs per access chain (1 = flat on-chip posmap); posmap-B = summed on-chip posmap bytes")
	if sf.Recursive() {
		fmt.Println("chain-len = mean path accesses per op across the recursion chain (PLB hits shrink it)")
		if sf.PLBBytes > 0 {
			fmt.Println("plb-hit   = position-map lookaside cache hit rate across all chain interfaces")
		}
	}
	fmt.Println("imbalance = busiest shard's executed real requests / mean (1.00 is perfectly even)")
	fmt.Println("pad/real  = scheduler padding accesses per real access (padded batch overhead)")
	fmt.Println("p50/p95/p99 = client-visible latency per submission (per op, or per batch with -batch)")
	if sf.Backend == "dram" {
		fmt.Println("row-hit = DRAM row-buffer hit rate; B/cyc = achieved bytes per memory cycle")
		fmt.Println("rd-cyc  = mean modeled path-read latency (DDR3 cycles, the access's critical path)")
		fmt.Println("Mcycles = modeled completion frontier of the measured traffic (millions of cycles)")
		fmt.Println("model-ops/s = ops per modeled second (measured ops / modeled cycles x 666.67 MHz DDR3-1333 bus clock)")
		if *paced {
			fmt.Println("paced: model-ops/s is the headline — clients were admitted by the modeled clock, not the wall clock")
		}
	}
}

// load holds the client-side load-generation knobs; everything about the
// ORAM construction itself lives in the pathoram.Spec built by SpecFlags.
type load struct {
	clients    int
	ops        int
	batch      int
	writeFrac  float64
	think      time.Duration
	paced      bool   // admit ops by modeled memory time (BackendDRAM only)
	mthink     uint64 // modeled think cycles between ops (with paced)
	cpuProfile string
	memProfile string
}

type result struct {
	levels        int
	posmapBytes   uint64
	wall          time.Duration
	opsPerSec     float64
	p50, p95, p99 time.Duration
	dummyPerReal  float64
	padPerReal    float64
	stashPeak     int
	imbalance     float64
	// Posmap-acceleration columns ("-" when flat / no PLB).
	plbHit, chainLen string
	// Modeled-timing columns ("-" under the untimed backend).
	rowHit, bytesPerCyc, readCyc, mcycles, modelOps string
}

func runConfig(spec pathoram.Spec, c load) (res result, err error) {
	client, err := pathoram.Open(spec)
	if err != nil {
		return result{}, err
	}
	s := client.(*pathoram.Sharded)
	// A Close error is a real result under -storage file: a failed final
	// checkpoint/msync means the measured run's durable state is suspect,
	// so it must surface (and main exits non-zero on it).
	defer func() {
		if cerr := s.Close(); cerr != nil && err == nil {
			res, err = result{}, fmt.Errorf("closing: %w", cerr)
		}
	}()

	// Pre-fill so the measurement sees steady state, then reset clocks.
	buf := make([]byte, spec.BlockSize)
	const chunk = 2048
	for lo := uint64(0); lo < spec.Blocks; lo += chunk {
		hi := min(lo+chunk, spec.Blocks)
		addrs := make([]uint64, 0, chunk)
		data := make([][]byte, 0, chunk)
		for a := lo; a < hi; a++ {
			addrs = append(addrs, a)
			data = append(data, buf)
		}
		if err := s.WriteBatch(addrs, data); err != nil {
			return result{}, err
		}
	}
	// Exclude the pre-fill from every reported metric: reset the protocol
	// counters and snapshot the cumulative scheduler and timing counters
	// (the TimingStats snapshot flushes, so pre-fill write-backs are fully
	// charged before the measurement starts).
	s.ResetStats()
	preSched := s.SchedulerStats()
	preTiming, timed := s.TimingStats()

	perClient := c.ops / c.clients
	if c.batch > 0 {
		// Clients round up to whole batches; account for what actually runs.
		perClient = (perClient + c.batch - 1) / c.batch * c.batch
	}
	if perClient == 0 {
		return result{}, fmt.Errorf("-ops %d spread over %d clients leaves no work per client", c.ops, c.clients)
	}
	// Profiles cover exactly the measured load phase: the CPU profile
	// starts here (after pre-fill and counter reset) and the allocation
	// profile is written right after the clients drain.
	if c.cpuProfile != "" {
		f, err := os.Create(c.cpuProfile)
		if err != nil {
			return result{}, err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return result{}, err
		}
		defer pprof.StopCPUProfile()
	}
	var wg sync.WaitGroup
	errs := make(chan error, c.clients)
	// Per-client latency logs (one slot per submission), merged after the
	// run for the percentile columns.
	lats := make([][]time.Duration, c.clients)
	start := time.Now()
	for cl := 0; cl < c.clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cl) + 1))
			payload := make([]byte, spec.BlockSize)
			record := func(d time.Duration) { lats[cl] = append(lats[cl], d) }
			pc := &pacer{interval: c.mthink}
			admit := func() {
				if c.paced {
					pacedWait(s, pc)
				}
			}
			if c.batch > 0 {
				lats[cl] = make([]time.Duration, 0, (perClient+c.batch-1)/c.batch)
				addrs := make([]uint64, c.batch)
				for done := 0; done < perClient; done += c.batch {
					for j := range addrs {
						addrs[j] = rng.Uint64() % spec.Blocks
					}
					admit()
					t0 := time.Now()
					if rng.Float64() < c.writeFrac {
						data := make([][]byte, c.batch)
						for j := range data {
							data[j] = payload
						}
						if err := s.WriteBatch(addrs, data); err != nil {
							errs <- err
							return
						}
					} else if _, err := s.ReadBatch(addrs); err != nil {
						errs <- err
						return
					}
					record(time.Since(t0))
					if c.think > 0 {
						time.Sleep(c.think)
					}
				}
				return
			}
			lats[cl] = make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				addr := rng.Uint64() % spec.Blocks
				var opErr error
				admit()
				t0 := time.Now()
				if rng.Float64() < c.writeFrac {
					opErr = s.Write(addr, payload)
				} else {
					_, opErr = s.Read(addr)
				}
				if opErr != nil {
					errs <- opErr
					return
				}
				record(time.Since(t0))
				if c.think > 0 {
					time.Sleep(c.think)
				}
			}
		}(cl)
	}
	wg.Wait()
	wall := time.Since(start)
	if c.cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if c.memProfile != "" {
		f, err := os.Create(c.memProfile)
		if err != nil {
			return result{}, err
		}
		runtime.GC() // flush pending frees so the profile shows live + cumulative allocs accurately
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			return result{}, err
		}
		f.Close()
	}
	select {
	case err := <-errs:
		return result{}, err
	default:
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		return all[int(p*float64(len(all)-1))]
	}

	st := s.Stats()
	sched := s.SchedulerStats()
	var total, max uint64
	for i, n := range sched.ExecutedPerShard {
		n -= preSched.ExecutedPerShard[i]
		total += n
		if n > max {
			max = n
		}
	}
	mean := float64(total) / float64(len(sched.ExecutedPerShard))
	res = result{
		levels:       s.NumORAMs(),
		posmapBytes:  s.OnChipPositionMapBytes(),
		wall:         wall,
		opsPerSec:    float64(c.clients*perClient) / wall.Seconds(),
		p50:          pct(0.50),
		p95:          pct(0.95),
		p99:          pct(0.99),
		dummyPerReal: st.DummyPerReal(),
		padPerReal:   st.PaddingPerReal(),
		stashPeak:    st.StashPeak,
		imbalance:    float64(max) / mean,
		plbHit:       "-", chainLen: "-",
		rowHit: "-", bytesPerCyc: "-", readCyc: "-", mcycles: "-", modelOps: "-",
	}
	if spec.PosMap == pathoram.PosMapRecursive {
		res.chainLen = fmt.Sprintf("%.2f", st.MeanChainLength())
		if spec.PLBBytes > 0 {
			res.plbHit = fmt.Sprintf("%.3f", st.PLBHitRate())
		}
	}
	if timed {
		// Diff against the post-pre-fill snapshot so the modeled columns
		// describe the measured traffic only. The closing snapshot flushes
		// first, so every deferred write-back the traffic owed is charged.
		post, _ := s.TimingStats()
		d := post.Delta(preTiming)
		res.rowHit = fmt.Sprintf("%.3f", d.RowHitRate())
		res.bytesPerCyc = fmt.Sprintf("%.2f", d.BytesPerCycle())
		res.readCyc = fmt.Sprintf("%.0f", d.MeanReadCycles())
		res.mcycles = fmt.Sprintf("%.1f", float64(d.Cycles)/1e6)
		if d.Cycles > 0 {
			res.modelOps = fmt.Sprintf("%.0f",
				float64(c.clients*perClient)*membus.CyclesPerSecond/float64(d.Cycles))
		}
	}
	return res, nil
}

// pacedWait blocks until the pacer admits the next submission on the
// modeled clock. The frontier only advances when some client's traffic
// retires, so if every client is waiting out its think time nothing
// moves; after a bounded wall spin the pacer skips the modeled idle
// span instead of simulating it (idle cycles carry no information — the
// metric of interest is ops per modeled second under load).
func pacedWait(s *pathoram.Sharded, p *pacer) {
	// The stall budget is wall-clock and burned by yielding, not sleeping:
	// an in-flight op retires in tens of microseconds, so a yield loop
	// observes the frontier move almost immediately, while sleep
	// granularity on a loaded host can be coarser than the whole budget.
	const stallBudget = time.Millisecond
	var deadline time.Time
	for {
		now, ok := s.ModeledFrontier()
		if !ok || p.admit(now) {
			return
		}
		if deadline.IsZero() {
			deadline = time.Now().Add(stallBudget)
		} else if time.Now().After(deadline) {
			p.skipIdle(now)
			continue // the reset slot admits on the next iteration
		}
		runtime.Gosched()
	}
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("shard count %d must be >= 1", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty sweep")
	}
	return out, nil
}

// table is a minimal right-aligned column printer.
type table struct {
	out  *os.File
	rows [][]string
}

func newTable(out *os.File) *table { return &table{out: out} }

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) flush() {
	if len(t.rows) == 0 {
		return
	}
	widths := make([]int, len(t.rows[0]))
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			fmt.Fprintf(t.out, "%*s  ", widths[i], c)
		}
		fmt.Fprintln(t.out)
	}
}
