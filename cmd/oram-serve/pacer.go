package main

// pacer schedules one client's closed-loop submissions against the
// modeled memory clock instead of the wall clock: operation n+1 is
// admitted once the modeled frontier reaches operation n's admission
// plus the think interval. Wall-clock ns/op measures the simulator;
// pacing by modeled cycles makes ops per modeled second — what the
// modeled machine would sustain — the headline metric.
type pacer struct {
	interval uint64 // modeled think cycles between admissions
	next     uint64 // earliest modeled cycle the next op may start
}

// admit reports whether the modeled clock now has reached the next
// admission slot, scheduling the following slot when it has.
func (p *pacer) admit(now uint64) bool {
	if now < p.next {
		return false
	}
	p.next = now + p.interval
	return true
}

// skipIdle pulls the next slot back to the current clock. The modeled
// frontier only advances when some client's traffic retires, so a fully
// idle system — every client waiting out its think time — would wait
// forever; the caller detects the stall on the wall clock and skips the
// modeled idle span instead of simulating it.
func (p *pacer) skipIdle(now uint64) { p.next = now }
