// Command oram-experiments regenerates every table and figure of the
// paper's evaluation in one run and prints a consolidated report (the
// source of EXPERIMENTS.md). Use -quick for a fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oram-experiments: ")
	quick := flag.Bool("quick", false, "smaller problem sizes (smoke run)")
	flag.Parse()

	start := time.Now()
	section := func(name string) {
		fmt.Printf("\n######## %s (t=%s) ########\n\n", name, time.Since(start).Round(time.Second))
	}

	section("Figure 3: stash occupancy")
	f3 := exp.DefaultFig3()
	if *quick {
		f3.WorkingSetBlocks = 1 << 12
	}
	r3, err := exp.RunFig3(f3)
	check(err)
	fmt.Println(r3.Table())

	section("Figure 4: CPL attack on insecure eviction")
	f4 := exp.DefaultFig4()
	if *quick {
		f4.Experiments = 20
	}
	r4, err := exp.RunFig4(f4)
	check(err)
	fmt.Println(r4.Table())

	section("Figure 7: dummy/real ratio vs stash size")
	f7 := exp.DefaultFig7()
	if *quick {
		f7.WorkingSetBlocks = 1 << 12
	}
	r7, err := exp.RunFig7(f7)
	check(err)
	fmt.Println(r7.Table())

	section("Figure 8: access overhead vs utilization")
	f8 := exp.DefaultFig8()
	if *quick {
		f8.WorkingSetBlocks = 1 << 12
	}
	r8, err := exp.RunFig8(f8)
	check(err)
	fmt.Println(r8.Table())
	if best := r8.Best(); best != nil {
		fmt.Printf("best: Z=%d at %.0f%% utilization, overhead %.1f\n",
			best.Z, 100*best.Utilization, best.Overhead)
	}

	section("Figure 9: access overhead vs capacity")
	f9 := exp.DefaultFig9()
	if *quick {
		f9.WorkingSets = []uint64{1 << 10, 1 << 12}
	}
	r9, err := exp.RunFig9(f9)
	check(err)
	fmt.Println(r9.Table())

	section("Figure 10: hierarchical overhead breakdown")
	f10 := exp.DefaultFig10()
	if *quick {
		f10.SimWorkingSet = 1 << 12
		f10.SimAccesses = 1 << 14
	}
	r10, err := exp.RunFig10(f10)
	check(err)
	fmt.Println(r10.Table())
	if red, err := r10.ReductionVsBase("DZ3Pb32"); err == nil {
		fmt.Printf("DZ3Pb32 reduction vs baseORAM: %.1f%% (paper: 41.8%%)\n", 100*red)
	}
	if red, err := r10.ReductionVsBase("DZ4Pb32"); err == nil {
		fmt.Printf("DZ4Pb32 reduction vs baseORAM: %.1f%% (paper: 35.0%%)\n", 100*red)
	}

	section("Figure 5: hierarchical access ordering")
	f5, err := exp.RunFig5(exp.DZ3Pb32, 1<<25, 2, 32, 31)
	check(err)
	fmt.Println(f5.Table())

	section("Figure 11: DRAM placement")
	f11 := exp.DefaultFig11()
	if *quick {
		f11.Accesses = 16
	}
	r11, err := exp.RunFig11(f11)
	check(err)
	fmt.Println(r11.Table())

	section("Table 2: latency and on-chip storage")
	t2, err := exp.RunTable2(exp.DefaultTable2())
	check(err)
	fmt.Println(t2.Table())

	section("Figure 12: SPEC benchmark slowdowns")
	f12 := exp.DefaultFig12()
	if *quick {
		f12.Instructions = 100_000
		f12.Warmup = 100_000
		f12.SimWorkingSet = 1 << 12
		f12.SimAccesses = 1 << 14
	}
	r12, err := exp.RunFig12(f12)
	check(err)
	fmt.Println(r12.Table())
	if imp, err := r12.ImprovementVsBase("DZ3Pb32"); err == nil {
		fmt.Printf("DZ3Pb32 improvement vs baseORAM: %.1f%% (paper: 43.9%%)\n", 100*imp)
	}
	if imp, err := r12.ImprovementVsBase("DZ4Pb32+SB"); err == nil {
		fmt.Printf("DZ4Pb32+SB improvement vs baseORAM: %.1f%% (paper: 52.4%%)\n", 100*imp)
	}

	section("Section 5: integrity verification")
	ri, err := exp.RunIntegrity(exp.DefaultIntegrity())
	check(err)
	fmt.Println(ri.Table())

	fmt.Printf("\ntotal runtime: %s\n", time.Since(start).Round(time.Millisecond))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
