package pathoram

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// Integration tests for the position-map acceleration pair: the lookaside
// cache (PLB, Section 3.3.3) and the Figure 5(b) speculative chain
// overlap, both through Open(Spec). Named TestPLB*/TestOverlap* for the
// CI `-run 'PLB|Overlap'` shard.

// plbSpec is a small recursive spec with a PLB, deterministic and with
// idle eviction disabled so single-client replays are exactly
// reproducible (see dramConfig's rationale).
func plbSpec(seed int64) Spec {
	return Spec{
		Blocks: 300, BlockSize: 16, Shards: 2,
		PosMap: PosMapRecursive, PosBlockSize: 16, OnChipPosMapMax: 128,
		PLBBytes:         2048,
		Encryption:       EncryptNone,
		EvictionsPerIdle: -1,
		Rand:             rand.New(rand.NewSource(seed)),
	}
}

// replayPLB drives one seeded workload through a spec variant and returns
// the per-shard data-level leaf sequences and the post-Flush per-shard,
// per-level tree snapshots.
func replayPLB(t *testing.T, mutate func(*Spec)) (leaves [][]uint64, trees []string) {
	t.Helper()
	spec := plbSpec(900)
	if mutate != nil {
		mutate(&spec)
	}
	logs := make([][]uint64, spec.Shards)
	spec.OnPathAccess = func(shard, level int, leaf uint64) {
		if level == 0 {
			logs[shard] = append(logs[shard], leaf)
		}
	}
	c, err := Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(901))
	// Reuse-heavy workload so the PLB actually hits: half the ops land on
	// a 16-address hot set.
	for i := 0; i < 900; i++ {
		addr := rng.Uint64() % spec.Blocks
		if rng.Intn(2) == 0 {
			addr = rng.Uint64() % 16
		}
		if rng.Intn(2) == 0 {
			d := make([]byte, 16)
			rng.Read(d)
			if err := c.Write(addr, d); err != nil {
				t.Fatal(err)
			}
		} else if _, err := c.Read(addr); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	s := c.(*Sharded)
	for sh := 0; sh < spec.Shards; sh++ {
		h := hierEngine(t, c, sh)
		for lvl := 0; lvl < h.NumORAMs(); lvl++ {
			snap := treeSnapshot(memTreeOf(t, h.inner.Level(lvl).BucketStore()))
			trees = append(trees, fmt.Sprintf("shard%d/level%d:%s", sh, lvl, strings.Join(snap, "|")))
		}
	}
	_ = s
	return logs, trees
}

// TestPLBClientEquivalenceReplay is the acceptance test for the cache:
// the same seeded trace through {sync,async}×{mem,dram} with the PLB on
// must touch identical data-ORAM leaf sequences and — after Flush — leave
// every shard's every tree byte-identical. Neither write-back staging nor
// the timed backend may perturb what the cache does, only when its
// traffic is charged.
func TestPLBClientEquivalenceReplay(t *testing.T) {
	type variant struct {
		name   string
		mutate func(*Spec)
	}
	variants := []variant{
		{"mem/sync", nil},
		{"mem/async", func(s *Spec) { s.AsyncEviction = true }},
		{"dram/sync", func(s *Spec) { s.Backend = BackendDRAM }},
		{"dram/async", func(s *Spec) { s.Backend = BackendDRAM; s.AsyncEviction = true }},
	}
	baseLeaves, baseTrees := replayPLB(t, variants[0].mutate)
	var total int
	for _, l := range baseLeaves {
		total += len(l)
	}
	if total == 0 {
		t.Fatal("baseline replay touched no data paths")
	}
	for _, v := range variants[1:] {
		leaves, trees := replayPLB(t, v.mutate)
		if len(leaves) != len(baseLeaves) {
			t.Fatalf("%s: shard count diverged", v.name)
		}
		for sh := range baseLeaves {
			if len(leaves[sh]) != len(baseLeaves[sh]) {
				t.Fatalf("%s shard %d: %d data accesses, baseline %d",
					v.name, sh, len(leaves[sh]), len(baseLeaves[sh]))
			}
			for i := range baseLeaves[sh] {
				if leaves[sh][i] != baseLeaves[sh][i] {
					t.Fatalf("%s shard %d: leaf sequence diverges at %d: %d vs %d",
						v.name, sh, i, leaves[sh][i], baseLeaves[sh][i])
				}
			}
		}
		if len(trees) != len(baseTrees) {
			t.Fatalf("%s: tree count diverged", v.name)
		}
		for i := range baseTrees {
			if trees[i] != baseTrees[i] {
				t.Fatalf("%s: post-Flush tree %d diverges from baseline", v.name, i)
			}
		}
	}
}

// TestPLBLogicalContentMatchesUncached replays one trace against a cached
// and an uncached client and checks every read — including a full
// post-Flush sweep — returns identical bytes. The PLB reorders label
// traffic; it must never change logical content.
func TestPLBLogicalContentMatchesUncached(t *testing.T) {
	run := func(plbBytes uint64, constShape bool) (Client, map[uint64][]byte) {
		spec := plbSpec(910)
		spec.PLBBytes = plbBytes
		spec.PLBConstantShape = constShape
		c, err := Open(spec)
		if err != nil {
			t.Fatal(err)
		}
		shadow := map[uint64][]byte{}
		rng := rand.New(rand.NewSource(911))
		for i := 0; i < 700; i++ {
			addr := rng.Uint64() % spec.Blocks
			if rng.Intn(3) > 0 {
				d := make([]byte, 16)
				rng.Read(d)
				if err := c.Write(addr, d); err != nil {
					t.Fatal(err)
				}
				shadow[addr] = d
			} else {
				got, err := c.Read(addr)
				if err != nil {
					t.Fatal(err)
				}
				want, ok := shadow[addr]
				if !ok {
					want = make([]byte, 16)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("step %d addr %d: got % x want % x", i, addr, got, want)
				}
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		return c, shadow
	}
	for _, mode := range []struct {
		name       string
		plb        uint64
		constShape bool
	}{
		{"off", 0, false},
		{"on", 2048, false},
		{"on+constant-shape", 2048, true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			c, shadow := run(mode.plb, mode.constShape)
			defer c.Close()
			for addr, want := range shadow {
				got, err := c.Read(addr)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("post-flush addr %d: got % x want % x", addr, got, want)
				}
			}
		})
	}
}

// TestPLBDataLeafUniformity is the security regression for cached-label
// reuse: even under a reuse-heavy workload with a high PLB hit rate, the
// data ORAM's observed leaf sequence must stay uniform — every access
// still remaps its group to a fresh uniform leaf, hit or miss.
func TestPLBDataLeafUniformity(t *testing.T) {
	spec := plbSpec(920)
	spec.Shards = 1
	var leaves []uint64
	spec.OnPathAccess = func(_, level int, leaf uint64) {
		if level == 0 {
			leaves = append(leaves, leaf)
		}
	}
	c, err := Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(921))
	for i := 0; i < 4000; i++ {
		// 8 hot addresses, hammered: near-total PLB hit rate on the chain.
		addr := rng.Uint64() % 8
		if rng.Intn(5) == 0 {
			addr = rng.Uint64() % spec.Blocks
		}
		if err := c.Write(addr, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.PLBHitRate() < 0.5 {
		t.Fatalf("hit rate %.2f too low for a reuse-skew regression", st.PLBHitRate())
	}
	h := hierEngine(t, c, 0)
	bins := uint64(1) << uint(h.inner.Level(0).Params().LeafLevel)
	counts := make([]uint64, bins)
	for _, l := range leaves {
		counts[l%bins]++
	}
	x2 := testutil.ChiSquare(counts)
	if thr := testutil.UniformThreshold(int(bins)); x2 > thr {
		t.Errorf("data-level leaves skewed under cached-label reuse: chi2=%.1f threshold=%.1f", x2, thr)
	}
}

// TestOverlapFrontierBeatsSerial is the Figure 5(b) acceptance test: the
// same seeded recursive trace on the timed backend completes at a
// strictly earlier modeled cycle with cross-request overlap than under
// the serial 5(a) chain clock — while touching the identical data-ORAM
// leaf sequence, since scheduling must never perturb the protocol.
func TestOverlapFrontierBeatsSerial(t *testing.T) {
	run := func(overlap int) ([]uint64, uint64) {
		spec := plbSpec(930)
		spec.Shards = 1
		spec.PLBBytes = 0 // isolate the overlap axis
		spec.Backend = BackendDRAM
		spec.Overlap = overlap
		var leaves []uint64
		spec.OnPathAccess = func(_, level int, leaf uint64) {
			if level == 0 {
				leaves = append(leaves, leaf)
			}
		}
		c, err := Open(spec)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(931))
		for i := 0; i < 400; i++ {
			if err := c.Write(rng.Uint64()%spec.Blocks, make([]byte, 16)); err != nil {
				t.Fatal(err)
			}
		}
		ts, ok := c.TimingStats()
		if !ok {
			t.Fatal("timed client reported no timing stats")
		}
		return leaves, ts.Cycles
	}
	serialLeaves, serialCycles := run(0)
	overlapLeaves, overlapCycles := run(4)
	if len(serialLeaves) != len(overlapLeaves) {
		t.Fatalf("leaf counts diverge: serial %d overlap %d", len(serialLeaves), len(overlapLeaves))
	}
	for i := range serialLeaves {
		if serialLeaves[i] != overlapLeaves[i] {
			t.Fatalf("leaf sequence diverges at %d: overlap scheduling perturbed the protocol", i)
		}
	}
	if overlapCycles >= serialCycles {
		t.Errorf("overlap frontier %d not earlier than serial %d", overlapCycles, serialCycles)
	}
}

// TestPLBOverlapSpecValidation pins the inert-knob rejections of the new
// axes: every acceleration knob must be rejected on a construction where
// it would silently change nothing.
func TestPLBOverlapSpecValidation(t *testing.T) {
	base := func() Spec {
		return Spec{
			Blocks: 256, BlockSize: 16,
			PosMap: PosMapRecursive, PosBlockSize: 16, OnChipPosMapMax: 128,
			Encryption: EncryptNone,
			Rand:       rand.New(rand.NewSource(940)),
		}
	}
	bad := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"plb-on-flat", func(s *Spec) {
			s.PosMap = PosMapOnChip
			s.PosBlockSize, s.OnChipPosMapMax = 0, 0
			s.PLBBytes = 1024
		}},
		{"constant-shape-on-flat", func(s *Spec) {
			s.PosMap = PosMapOnChip
			s.PosBlockSize, s.OnChipPosMapMax = 0, 0
			s.PLBConstantShape = true
		}},
		{"overlap-on-flat", func(s *Spec) {
			s.PosMap = PosMapOnChip
			s.PosBlockSize, s.OnChipPosMapMax = 0, 0
			s.Overlap = 2
		}},
		{"constant-shape-without-plb", func(s *Spec) { s.PLBConstantShape = true }},
		{"overlap-negative", func(s *Spec) { s.Backend = BackendDRAM; s.Overlap = -1 }},
		{"overlap-on-mem", func(s *Spec) { s.Overlap = 2 }},
		{"overlap-with-serialize", func(s *Spec) {
			s.Backend = BackendDRAM
			s.DRAMSerialize = true
			s.Overlap = 2
		}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			spec := base()
			tc.mutate(&spec)
			if _, err := Open(spec); err == nil {
				t.Error("inert/contradictory knob accepted")
			}
		})
	}
	good := base()
	good.Backend = BackendDRAM
	good.PLBBytes = 1024
	good.PLBConstantShape = true
	good.Overlap = 4
	c, err := Open(good)
	if err != nil {
		t.Fatalf("full acceleration spec rejected: %v", err)
	}
	if err := c.Write(1, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if c.OnChipBytes() == 0 {
		t.Error("no on-chip provision reported")
	}
	c.Close()
}
