package pathoram

import (
	"crypto/aes"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/encrypt"
	"repro/internal/membus"
	"repro/internal/shard"
)

// Partition selects how Sharded maps logical addresses to shards.
type Partition int

const (
	// PartitionStripe routes address a to shard a mod N with local address
	// a div N. Sequential and strided scans spread evenly over all shards,
	// which is the right default for throughput; the cost is that logically
	// adjacent addresses land in different trees, so per-shard super blocks
	// no longer capture the program's spatial locality.
	PartitionStripe Partition = iota
	// PartitionRange gives each shard one contiguous slice of the address
	// space. Adjacency survives inside a shard — super-block prefetching
	// keeps its meaning — but a sequential scan hammers one shard at a
	// time.
	PartitionRange
	// PartitionRandom routes obliviously: a second position map assigns
	// every block a uniformly random shard, remapped to a fresh uniform
	// draw on each access (Stefanov-Shi-Song-style partitioned ORAM), so
	// the shard serving a request depends only on secret coins, never on
	// the address. Every access becomes two path accesses (fetch from the
	// current home, relocate to the new one), and every shard must be
	// sized for the whole address space — the storage and bandwidth price
	// of hiding the routing. Combine with ShardedConfig.Padded for
	// batches whose shard schedule has a fixed, input-independent shape;
	// see SECURITY.md for exactly what each combination hides.
	PartitionRandom
)

// ShardedConfig describes a sharded, concurrency-safe ORAM: N independent
// Path ORAM instances behind a batched request scheduler.
type ShardedConfig struct {
	// Config is the per-shard template. Blocks is the TOTAL logical
	// address space; it is split across the shards by Partition, and every
	// other field applies to each shard individually (an explicit
	// LeafLevel, for instance, sizes every shard's tree). Key is the
	// master secret: each shard receives its own key derived from it, and
	// Rand seeds an independent per-shard generator — neither is ever
	// shared between shards (see NewSharded). Exception: the timed
	// backend. With Backend: BackendDRAM every shard attaches to ONE
	// shared memory scheduler (DRAMChannels channels, DRAMLayout
	// placement), so concurrent shards contend for the same modeled
	// channels and banks — the multi-channel deployment the paper
	// analyzes. TimingStats then reports modeled cycles for the whole
	// fleet.
	Config
	// Shards is the number of independent Path ORAM instances, each owned
	// by its own worker goroutine. Default 1. Must not exceed Blocks.
	Shards int
	// Partition selects the address-space split (default PartitionStripe).
	Partition Partition
	// QueueDepth is the per-shard request queue length (default 128).
	QueueDepth int
	// EvictionsPerIdle caps how many background-eviction dummy accesses a
	// worker issues per idle gap (default 4; negative disables idle
	// eviction, leaving only write-back completion). Only meaningful with
	// AsyncEviction (promoted from Config), which turns each shard into a
	// two-stage pipeline: the worker answers a request as soon as its path
	// has been read and merged, then completes the deferred write-back —
	// and runs background stash eviction — during idle queue time.
	// Client-visible latency pays only for the read half of each access;
	// under sustained saturation the deferred work drains inline and
	// throughput matches the synchronous mode. Close, Inspect-based
	// snapshots (Stats, ShardStats, StashSize) and Flush all drain fully
	// first, so observed state always matches the synchronous protocol.
	// See DESIGN.md (pipelining) and SECURITY.md (why the idle-time
	// schedule leaks nothing).
	EvictionsPerIdle int
	// Padded switches ReadBatch/WriteBatch to the padded batch mode:
	// every batch touches every shard an equal number of times — the
	// larger of ceil(batchSize/Shards) and the busiest shard's real
	// demand — with scheduler-issued dummy accesses (OpPadding, real
	// random-path accesses) filling the empty slots. An observer of the
	// shard schedule cannot tell which slots carried real requests.
	// Under PartitionRandom the whole shape is additionally independent
	// of the requested addresses; under the fixed partitions the shape's
	// height still tracks the busiest shard (see DESIGN.md's decision
	// table). Padding overhead is counted in Stats.PaddingAccesses.
	// Single operations are never padded.
	Padded bool
	// OnShardPathAccess, when set, observes every path each shard touches
	// — the adversary's per-shard view of the access sequence. It is
	// called from the shard worker goroutines, so distinct shards invoke
	// it concurrently; the callback must tolerate that (per-shard
	// accumulators indexed by the shard argument need no locking).
	OnShardPathAccess func(shard int, leaf uint64)
}

// Sharded is a concurrency-safe ORAM serving layer. It partitions the
// logical address space over independent Path ORAM shards, each owned
// exclusively by a worker goroutine, and schedules requests onto them:
// single operations (Read/Write/Update) enqueue and wait, batched
// operations (ReadBatch/WriteBatch) fan out across shards and join.
//
// All methods are safe for concurrent use by any number of goroutines.
//
// Obliviousness: the shard selector is a fixed public function of the
// address, and within each shard the unmodified Path ORAM invariant holds —
// every access touches a freshly drawn uniform path, so each shard's leaf
// sequence is uniform and independent of the program's access pattern
// (Stefanov et al.: disjoint trees are accessed independently without
// weakening obliviousness). What the adversary additionally sees compared
// to one big tree is which shard serves each request, i.e. the timing and
// per-shard mix of traffic; see DESIGN.md for the precise statement and the
// deployment guidance (uniform partitioning, padding batches with dummy
// accesses when request-to-shard routing itself must be hidden).
type Sharded struct {
	engines   []clientEngine
	pool      *shard.Pool
	blocks    uint64
	blockSize int
	n         uint64
	partition Partition
	padded    bool
	// router is the block→shard position map (PartitionRandom only).
	router *randomRouter
	// padDraws picks the uniform target shard of a single PaddingAccess.
	padDraws *shardDrawer
	// bgCursor rotates StepBackground's scan start across shards.
	bgCursor atomic.Uint64
	// bus is the shared memory-channel scheduler (BackendDRAM only).
	bus *membus.Bus
	// Range-partition geometry: the first `big` shards hold base+1 blocks,
	// the rest hold base.
	base, big uint64
}

// clientEngine is what the serving layer needs from one per-shard engine:
// the scheduler interface plus the Client observability surface. Flat
// ORAMs and Hierarchies both qualify (via thin adapters reconciling
// Load's public Block group type with the scheduler's core.Slot).
type clientEngine interface {
	shard.Engine
	Close() error
	Stats() Stats
	ResetStats()
	StashSize() int
	PendingWriteBacks() int
	ExternalMemoryBytes() uint64
	NumORAMs() int
	OnChipPositionMapBytes() uint64
	OnChipBytes() uint64
	TimingStats() (TimingStats, bool)
}

// oramEngine adapts a flat *ORAM to clientEngine: the scheduler's Load
// speaks core.Slot (engine-local addresses), the public ORAM.Load speaks
// Block. Everything else is promoted.
type oramEngine struct{ *ORAM }

func (e oramEngine) Load(addr uint64) ([]byte, bool, []core.Slot, error) {
	return e.ORAM.inner.Load(addr)
}

// hierarchyEngine adapts a *Hierarchy the same way.
type hierarchyEngine struct{ *Hierarchy }

func (e hierarchyEngine) Load(addr uint64) ([]byte, bool, []core.Slot, error) {
	return e.Hierarchy.inner.Load(addr)
}

// engineFactory builds shard i's engine from its fully specialized
// per-shard Config (Blocks narrowed to the shard's slice, Key and Rand
// independently derived, the shared bus injected, hooks wrapped). Open
// supplies a factory that builds hierarchies; NewSharded's builds flat
// ORAMs.
type engineFactory func(i int, sc Config) (clientEngine, error)

// NewSharded builds the sharded ORAM. Per-shard derivations keep the
// shards cryptographically and statistically independent:
//
//   - Keys: cfg.Key (drawn fresh when nil) acts as a master secret; shard i
//     encrypts under AES_master(i). Sharing one key would reuse one-time
//     pads — CounterScheme's pad depends only on (key, bucketID, counter)
//     and every shard numbers its buckets from zero.
//   - Randomness: when cfg.Rand is set, each shard gets its own generator
//     seeded from a draw on cfg.Rand (which is consumed in shard order, so
//     a fixed parent seed reproduces the whole sharded simulation).
//     math/rand generators are not goroutine-safe; sharing one across
//     workers would be a data race.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	// Flat shards derive per-shard keys only when encryption is actually
	// in use (BlockSize 0 forces EncryptNone in applyDefaults): an unused
	// Key of arbitrary length must not fail a plaintext simulation.
	needKeys := cfg.Encryption != EncryptNone && cfg.BlockSize > 0
	return newSharded(cfg, needKeys, func(_ int, sc Config) (clientEngine, error) {
		o, err := New(sc)
		if err != nil {
			return nil, err
		}
		return oramEngine{o}, nil
	})
}

// newSharded is the shared serving-layer builder: it validates the
// config, derives the per-shard key/randomness material, builds the
// shared memory bus when the backend is timed, constructs one engine per
// shard through the factory, and starts the worker pool.
func newSharded(cfg ShardedConfig, needKeys bool, build engineFactory) (*Sharded, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("pathoram: Shards=%d must be >= 1", cfg.Shards)
	}
	if cfg.Blocks == 0 {
		return nil, fmt.Errorf("pathoram: Blocks must be >= 1")
	}
	if uint64(cfg.Shards) > cfg.Blocks {
		return nil, fmt.Errorf("pathoram: %d shards for %d blocks; every shard needs at least one block", cfg.Shards, cfg.Blocks)
	}
	switch cfg.Partition {
	case PartitionStripe, PartitionRange, PartitionRandom:
	default:
		return nil, fmt.Errorf("pathoram: unknown partition %d", cfg.Partition)
	}
	// The master must be exactly 16 bytes — AES-KDF subkeys are AES-128,
	// and quietly accepting a 32-byte master would downgrade an intended
	// AES-256 setup. needKeys is the construction's own rule for whether
	// encryption material is in play (hierarchies encrypt their
	// position-map levels even when the data ORAM is metadata-only).
	var keys [][]byte
	if needKeys {
		master := cfg.Key
		if master == nil {
			master = make([]byte, encrypt.KeySize)
			if _, err := crand.Read(master); err != nil {
				return nil, fmt.Errorf("pathoram: drawing master key: %w", err)
			}
		} else if len(master) != encrypt.KeySize {
			return nil, fmt.Errorf("pathoram: master key is %d bytes, want %d (per-shard subkeys are AES-128)",
				len(master), encrypt.KeySize)
		}
		var err error
		if keys, err = deriveShardKeys(master, cfg.Shards); err != nil {
			return nil, err
		}
	}
	n := uint64(cfg.Shards)
	s := &Sharded{
		engines:   make([]clientEngine, cfg.Shards),
		blocks:    cfg.Blocks,
		blockSize: cfg.BlockSize,
		n:         n,
		partition: cfg.Partition,
		padded:    cfg.Padded,
		base:      cfg.Blocks / n,
		big:       cfg.Blocks % n,
	}
	if cfg.Backend == BackendDRAM {
		// One memory scheduler for the whole deployment: every shard's
		// path reads and write-backs land on the same modeled channels, in
		// shard order (the attach order fixes the physical address map).
		bus, err := membus.New(membus.Config{
			Channels:  cfg.DRAMChannels,
			Layout:    cfg.DRAMLayout.membusLayout(),
			Serialize: cfg.DRAMSerialize,
			Sched:     cfg.dramSchedConfig(),
		})
		if err != nil {
			return nil, err
		}
		cfg.bus = bus
		s.bus = bus
	}
	engines := make([]shard.Engine, cfg.Shards)
	for i := range s.engines {
		sc := cfg.Config
		sc.Blocks = s.shardBlocks(i)
		// Per-shard file names: shard i's trees live under Dir as
		// "shard<i>[-l<level>]" so shards never collide in one directory.
		sc.storeName = fmt.Sprintf("shard%d", i)
		if keys != nil {
			sc.Key = keys[i]
		}
		if cfg.Rand != nil {
			sc.Rand = rand.New(rand.NewSource(cfg.Rand.Int63()))
		}
		if cfg.OnShardPathAccess != nil {
			hook, inner := cfg.OnShardPathAccess, cfg.Config.OnPathAccess
			sc.OnPathAccess = func(leaf uint64) {
				if inner != nil {
					inner(leaf)
				}
				hook(i, leaf)
			}
		}
		e, err := build(i, sc)
		if err != nil {
			return nil, fmt.Errorf("pathoram: building shard %d: %w", i, err)
		}
		s.engines[i] = e
		engines[i] = e
	}
	pool, err := shard.NewPool(engines, shard.Config{
		QueueDepth:       cfg.QueueDepth,
		IdleWork:         cfg.AsyncEviction,
		EvictionsPerIdle: cfg.EvictionsPerIdle,
	})
	if err != nil {
		return nil, err
	}
	s.pool = pool
	if cfg.Partition == PartitionRandom {
		// The router's shard draws get their own source: deterministic
		// (derived from cfg.Rand, after the per-shard seeds, so existing
		// seeded simulations keep their per-shard streams) or crypto.
		var src core.LeafSource
		if cfg.Rand != nil {
			src = core.NewMathLeafSource(rand.New(rand.NewSource(cfg.Rand.Int63())))
		} else {
			src = core.NewCryptoLeafSource()
		}
		s.router = newRandomRouter(cfg.Blocks, newShardDrawer(src, cfg.Shards))
	}
	// The single-operation PaddingAccess targets a uniformly drawn shard;
	// its draws get their own source, derived last so the per-shard and
	// router streams of existing seeded simulations stay unchanged.
	var padSrc core.LeafSource
	if cfg.Rand != nil {
		padSrc = core.NewMathLeafSource(rand.New(rand.NewSource(cfg.Rand.Int63())))
	} else {
		padSrc = core.NewCryptoLeafSource()
	}
	s.padDraws = newShardDrawer(padSrc, cfg.Shards)
	return s, nil
}

// Key-derivation domains. Every construction that expands the master key
// into subkeys must use its own tag here: the tag is what guarantees that
// no two structures ever encrypt under the same subkey — and therefore
// never share counter-scheme one-time pads — even when they reuse indices
// (shard 1 vs hierarchy level 1) and both number buckets from zero.
const (
	domainHierarchy byte = 'H' // per-level keys of the recursive position map
	domainShard     byte = 'S' // per-shard keys of the sharded serving layer
	domainTenant    byte = 'T' // per-tenant master keys of the oram-server service
)

// DeriveTenantKey expands a 16-byte service master key into the
// independent master key for tenant index i, in the same domain-separated
// KDF the sharded and hierarchical constructions use ('T' tag). Each
// tenant's ORAM then derives its own per-shard/per-level subkeys from
// that tenant master, so no two tenants — and no two structures within a
// tenant — ever encrypt under the same key. cmd/oram-server assigns
// indices monotonically as tenants are created.
func DeriveTenantKey(master []byte, index uint64) ([]byte, error) {
	if len(master) != encrypt.KeySize {
		return nil, fmt.Errorf("pathoram: service master key is %d bytes, want %d", len(master), encrypt.KeySize)
	}
	return deriveSubKey(master, domainTenant, index)
}

// deriveSubKey expands the 16-byte master key into an independent subkey
// with one AES block: AES_master(index ‖ 0… ‖ domain). AES as a PRP:
// distinct (domain, index) inputs give distinct pseudorandom keys, none
// equal to the master.
func deriveSubKey(master []byte, domain byte, index uint64) ([]byte, error) {
	blk, err := aes.NewCipher(master)
	if err != nil {
		return nil, fmt.Errorf("pathoram: key derivation: %w", err)
	}
	var in [16]byte
	binary.LittleEndian.PutUint64(in[:8], index)
	in[15] = domain
	k := make([]byte, 16)
	blk.Encrypt(k, in[:])
	return k, nil
}

// deriveShardKeys derives one independent key per shard from the master.
func deriveShardKeys(master []byte, n int) ([][]byte, error) {
	keys := make([][]byte, n)
	for i := range keys {
		k, err := deriveSubKey(master, domainShard, uint64(i))
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	return keys, nil
}

// shardBlocks returns the number of logical addresses shard i serves.
func (s *Sharded) shardBlocks(i int) uint64 {
	switch s.partition {
	case PartitionRandom:
		// Any block can live on any shard at any time, so every shard is
		// sized for the full logical address space.
		return s.blocks
	case PartitionRange:
		if uint64(i) < s.big {
			return s.base + 1
		}
		return s.base
	default: // PartitionStripe
		return (s.blocks - uint64(i) + s.n - 1) / s.n
	}
}

// shardOf maps a logical address to its shard and shard-local address.
func (s *Sharded) shardOf(addr uint64) (int, uint64) {
	if s.partition == PartitionRange {
		cut := s.big * (s.base + 1)
		if addr < cut {
			return int(addr / (s.base + 1)), addr % (s.base + 1)
		}
		rest := addr - cut
		return int(s.big + rest/s.base), rest % s.base
	}
	return int(addr % s.n), addr / s.n
}

// globalOf inverts shardOf: the logical address of shard sh's local addr.
func (s *Sharded) globalOf(sh int, local uint64) uint64 {
	if s.partition == PartitionRange {
		if uint64(sh) < s.big {
			return uint64(sh)*(s.base+1) + local
		}
		return s.big*(s.base+1) + (uint64(sh)-s.big)*s.base + local
	}
	return local*s.n + uint64(sh)
}

func (s *Sharded) checkAddr(addr uint64) error {
	if addr >= s.blocks {
		return fmt.Errorf("pathoram: address %d out of range [0,%d)", addr, s.blocks)
	}
	return nil
}

// NumShards returns the number of independent ORAM shards.
func (s *Sharded) NumShards() int { return len(s.engines) }

// Blocks returns the total logical address-space size.
func (s *Sharded) Blocks() uint64 { return s.blocks }

// NumORAMs returns the number of ORAMs one access walks within its shard:
// 1 for flat shards, the recursion depth H for hierarchical shards (the
// deepest shard, should the partition sizes make chains differ).
func (s *Sharded) NumORAMs() int {
	max := 0
	for _, e := range s.engines {
		if n := e.NumORAMs(); n > max {
			max = n
		}
	}
	return max
}

// OnChipPositionMapBytes returns the summed on-chip position-map
// footprint across shards: the whole map per shard for flat shards, the
// final (smallest) map per shard for hierarchical ones. Fixed at
// construction, so it reads without serializing against traffic.
func (s *Sharded) OnChipPositionMapBytes() uint64 {
	var total uint64
	for _, e := range s.engines {
		total += e.OnChipPositionMapBytes()
	}
	return total
}

// OnChipBytes returns the summed trusted-memory provision across shards:
// every shard's on-chip position map plus every stash bound (one stash per
// tree — a hierarchical shard contributes one per level). Sharding
// multiplies the stash term by N; the per-shard position maps shrink, so
// the posmap term is roughly constant for flat shards and bounded per
// shard for recursive ones. Fixed at construction, so it reads without
// serializing against traffic.
func (s *Sharded) OnChipBytes() uint64 {
	var total uint64
	for _, e := range s.engines {
		total += e.OnChipBytes()
	}
	return total
}

// reqAndWait pairs one single-operation request with its wait state so both
// recycle together through reqPool: steady-state single operations then
// submit without allocating (the batch paths allocate per batch, which
// amortizes; the single-op path has nothing to amortize over).
type reqAndWait struct {
	req shard.Request
	wg  sync.WaitGroup
}

var reqPool = sync.Pool{New: func() any { return new(reqAndWait) }}

// doPooled submits one single-op request built by build through recycled
// request/wait state, returning the result fields the single-op surface
// needs. The request is scrubbed before going back in the pool so payload
// and result buffers aren't pinned.
func (s *Sharded) doPooled(sh int, build func(r *shard.Request)) (out []byte, found bool, err error) {
	rw := reqPool.Get().(*reqAndWait)
	rw.req = shard.Request{}
	build(&rw.req)
	err = s.pool.DoWith(sh, &rw.req, &rw.wg)
	out, found = rw.req.Out, rw.req.Found
	rw.req = shard.Request{}
	reqPool.Put(rw)
	return out, found, err
}

// Read returns a copy of the block at addr (zero-filled if never written).
// One oblivious path access on the owning shard — two under
// PartitionRandom (fetch from the current home, relocate to a fresh one).
func (s *Sharded) Read(addr uint64) ([]byte, error) {
	if s.partition == PartitionRandom {
		return s.randomAccess(addr, shard.OpRead, nil, nil)
	}
	if err := s.checkAddr(addr); err != nil {
		return nil, err
	}
	sh, local := s.shardOf(addr)
	out, _, err := s.doPooled(sh, func(r *shard.Request) {
		r.Op, r.Addr = shard.OpRead, local
	})
	return out, err
}

// ReadInto reads the block at addr into the caller-provided dst (BlockSize
// bytes), avoiding the per-read result allocation of Read — with pooled
// request state, a steady-state ReadInto allocates nothing on the serving
// path. found reports whether the block was ever written. Under
// PartitionRandom the two-leg protocol runs as usual and the fetched value
// is copied into dst; found is then always true — the relocation leg
// materializes every block it touches, so the router cannot distinguish a
// never-written block after its first access.
func (s *Sharded) ReadInto(addr uint64, dst []byte) (bool, error) {
	if s.blockSize > 0 && len(dst) != s.blockSize {
		return false, fmt.Errorf("pathoram: dst length %d, want block size %d", len(dst), s.blockSize)
	}
	if s.partition == PartitionRandom {
		out, err := s.randomAccess(addr, shard.OpRead, nil, nil)
		if err != nil {
			return false, err
		}
		copy(dst, out)
		return true, nil
	}
	if err := s.checkAddr(addr); err != nil {
		return false, err
	}
	sh, local := s.shardOf(addr)
	_, found, err := s.doPooled(sh, func(r *shard.Request) {
		r.Op, r.Addr, r.Dst = shard.OpRead, local, dst
	})
	return found, err
}

// Write replaces the block at addr. One oblivious path access on the
// owning shard — two under PartitionRandom, making writes
// indistinguishable from reads on the shard schedule. The caller keeps
// ownership of data (Write returns only after the shard has copied it in).
func (s *Sharded) Write(addr uint64, data []byte) error {
	if s.partition == PartitionRandom {
		_, err := s.randomAccess(addr, shard.OpWrite, data, nil)
		return err
	}
	if err := s.checkAddr(addr); err != nil {
		return err
	}
	sh, local := s.shardOf(addr)
	_, _, err := s.doPooled(sh, func(r *shard.Request) {
		r.Op, r.Addr, r.Data = shard.OpWrite, local, data
	})
	return err
}

// Update applies fn to the block's content in place in a single oblivious
// read-modify-write access (a fetch-relocate pair under PartitionRandom).
// fn runs on the shard's worker goroutine — on the caller's goroutine
// under PartitionRandom — so it must not call back into this Sharded (that
// would deadlock the worker on itself) and should not block.
func (s *Sharded) Update(addr uint64, fn func(data []byte)) error {
	if s.partition == PartitionRandom {
		_, err := s.randomAccess(addr, shard.OpUpdate, nil, fn)
		return err
	}
	if err := s.checkAddr(addr); err != nil {
		return err
	}
	sh, local := s.shardOf(addr)
	_, _, err := s.doPooled(sh, func(r *shard.Request) {
		r.Op, r.Addr, r.Fn = shard.OpUpdate, local, fn
	})
	return err
}

// errRandomExclusive documents the one Client operation the oblivious
// routing mode cannot serve: exclusive checkout pins a block to the
// processor across accesses, while PartitionRandom must relocate a block
// to a fresh uniform shard on every touch — the two ownership disciplines
// do not compose (yet; an eviction-pool design could reconcile them).
var errRandomExclusive = fmt.Errorf("pathoram: Load/Store (exclusive checkout) is not supported under PartitionRandom")

// Load is the exclusive read of Section 3.3.1 through the serving layer:
// one oblivious access on the owning shard removes the block — and, with
// super blocks, its resident group members — from that shard and hands
// them to the caller, with group addresses translated back to logical
// addresses. Note super blocks group *shard-local* adjacency: under
// PartitionStripe the returned group members are stride-N logical
// neighbors, under PartitionRange true neighbors. Not supported under
// PartitionRandom (see errRandomExclusive). Blocks stay checked out until
// Store returns them.
func (s *Sharded) Load(addr uint64) (data []byte, found bool, group []Block, err error) {
	if s.partition == PartitionRandom {
		return nil, false, nil, errRandomExclusive
	}
	if err := s.checkAddr(addr); err != nil {
		return nil, false, nil, err
	}
	sh, local := s.shardOf(addr)
	req := shard.Request{Op: shard.OpLoad, Addr: local}
	if err := s.pool.Do(sh, &req); err != nil {
		return nil, false, nil, err
	}
	for _, sl := range req.Group {
		group = append(group, Block{Addr: s.globalOf(sh, sl.Addr), Data: sl.Data})
	}
	return req.Out, req.Found, group, nil
}

// Store returns a previously loaded block. It inserts straight into the
// owning shard's stash — no path access (Section 3.3.1).
func (s *Sharded) Store(addr uint64, data []byte) error {
	if s.partition == PartitionRandom {
		return errRandomExclusive
	}
	if err := s.checkAddr(addr); err != nil {
		return err
	}
	sh, local := s.shardOf(addr)
	return s.pool.Do(sh, &shard.Request{Op: shard.OpStore, Addr: local, Data: data})
}

// PaddingAccess performs one scheduler-padding dummy operation shaped
// exactly like a real single operation, so an observer of the shard
// schedule and the memory bus cannot tell them apart: under the fixed
// partitions one dummy path access on a uniformly drawn shard (touching
// every level of a hierarchical shard); under PartitionRandom a two-leg
// pair on two independently drawn uniform shards, mirroring the
// fetch + relocate shape every real operation has there. Padded batches
// inject their padding themselves; the single-op form exists so callers
// can run their own cover-traffic schedules.
func (s *Sharded) PaddingAccess() error {
	if s.partition == PartitionRandom {
		legs := s.padDraws.drawMany(2)
		for _, sh := range legs {
			if err := s.pool.Do(sh, &shard.Request{Op: shard.OpPadding}); err != nil {
				return err
			}
		}
		return nil
	}
	return s.pool.Do(s.padDraws.draw(), &shard.Request{Op: shard.OpPadding})
}

// StepBackground performs one unit of deferred work on some shard:
// scanning from a rotating start, it asks each shard's engine in turn —
// serialized with that shard's request stream, without the snapshot
// consistency flush — for one pending write-back completion or (when
// allowEviction is set) one background-eviction dummy access, returning
// the first unit performed. BgNone means no shard has anything useful to
// do. With AsyncEviction the shard workers already do this in idle queue
// time; the manual pump exists for Client-interface parity and for pools
// running with idle work disabled.
func (s *Sharded) StepBackground(allowEviction bool) (BackgroundWork, error) {
	n := len(s.engines)
	start := int(s.bgCursor.Add(1)-1) % n
	for k := 0; k < n; k++ {
		i := (start + k) % n
		var w BackgroundWork
		var err error
		if perr := s.pool.Peek(i, func() { w, err = s.engines[i].StepBackground(allowEviction) }); perr != nil {
			return BgNone, perr
		}
		if err != nil {
			return w, err
		}
		if w != BgNone {
			return w, nil
		}
	}
	return BgNone, nil
}

// ReadBatch reads every address in one submission: requests fan out to
// their shards, run in parallel across shards, and join. results[i] is the
// block at addrs[i] — input order is preserved regardless of shard
// interleaving. Address validation happens up front: an out-of-range
// address fails the whole batch before anything is submitted. Once
// submitted, every request executes; the returned error is then the first
// per-request failure and results holds whatever succeeded (nil at failed
// slots). Exception: under PartitionRandom a failed fetch aborts the
// whole batch before any block is relocated — results is then nil even
// for requests whose fetch succeeded (the router map stays consistent;
// see DESIGN.md's error semantics).
func (s *Sharded) ReadBatch(addrs []uint64) ([][]byte, error) {
	if len(addrs) == 0 {
		return nil, nil
	}
	if s.partition == PartitionRandom {
		return s.randomBatch(addrs, nil, shard.OpRead)
	}
	build := func(_ int, local uint64) shard.Request {
		return shard.Request{Op: shard.OpRead, Addr: local}
	}
	var reqs []*shard.Request
	var err error
	if s.padded {
		reqs, err = s.paddedFixedBatch(addrs, build)
	} else {
		var shards []int
		reqs, shards, err = s.batchRequests(addrs, build)
		if err != nil {
			return nil, err
		}
		err = s.pool.DoBatch(shards, reqs)
	}
	if reqs == nil {
		return nil, err
	}
	results := make([][]byte, len(addrs))
	for i, r := range reqs {
		results[i] = r.Out
	}
	return results, err
}

// WriteBatch writes data[i] to addrs[i] for every i in one submission,
// fanning out across shards and joining. Ordering guarantee: requests to
// the same shard execute in slice order, so a batch writing one address
// twice ends with the later value (under PartitionRandom, duplicates
// coalesce with the same later-write-wins result). Address and length
// validation happens up front and fails the whole batch before anything
// is submitted; once submitted, every request executes and the returned
// error is the first per-request failure — except under PartitionRandom,
// where a failed fetch aborts the batch before any write lands.
func (s *Sharded) WriteBatch(addrs []uint64, data [][]byte) error {
	if len(addrs) != len(data) {
		return fmt.Errorf("pathoram: %d addresses for %d payloads", len(addrs), len(data))
	}
	if len(addrs) == 0 {
		return nil
	}
	if s.partition == PartitionRandom {
		_, err := s.randomBatch(addrs, data, shard.OpWrite)
		return err
	}
	build := func(i int, local uint64) shard.Request {
		return shard.Request{Op: shard.OpWrite, Addr: local, Data: data[i]}
	}
	if s.padded {
		_, err := s.paddedFixedBatch(addrs, build)
		return err
	}
	reqs, shards, err := s.batchRequests(addrs, build)
	if err != nil {
		return err
	}
	return s.pool.DoBatch(shards, reqs)
}

// batchRequests validates every address up front, then builds the routing
// arrays for one batch submission: build constructs request i from its
// index and shard-local address. The single routing path both batch ops
// share — padded/dummy-filled batch modes should extend this, not fork it.
func (s *Sharded) batchRequests(addrs []uint64, build func(i int, local uint64) shard.Request) ([]*shard.Request, []int, error) {
	reqs := make([]*shard.Request, len(addrs))
	shards := make([]int, len(addrs))
	backing := make([]shard.Request, len(addrs))
	for i, a := range addrs {
		if err := s.checkAddr(a); err != nil {
			return nil, nil, err
		}
		sh, local := s.shardOf(a)
		backing[i] = build(i, local)
		reqs[i] = &backing[i]
		shards[i] = sh
	}
	return reqs, shards, nil
}

// Stats aggregates the protocol counters across all shards (Stats.Merge
// semantics: counters sum, stash peaks take the worst shard). Each shard's
// snapshot is taken on its worker, serialized with that shard's request
// stream. Under AsyncEviction snapshots flush first; a flush failure
// cannot be reported here (no error return) but is recorded and surfaced
// by Close — call Flush directly to observe it eagerly.
func (s *Sharded) Stats() Stats {
	var merged Stats
	for _, st := range s.ShardStats() {
		merged = merged.Merge(st)
	}
	return merged
}

// ShardStats returns each shard's own protocol counters. Snapshots are
// taken on the workers, serialized with each shard's request stream and
// fanned out in parallel (after Close they read the quiescent shards
// directly).
func (s *Sharded) ShardStats() []Stats {
	out := make([]Stats, len(s.engines))
	_ = s.pool.InspectAll(s.inspectors(func(i int, e clientEngine) { out[i] = e.Stats() }))
	return out
}

// ResetStats clears every shard's protocol counters (peaks included), e.g.
// to exclude a pre-fill phase from a measurement. BlocksInORAM is a live
// occupancy gauge, not a counter, and survives the reset. The scheduler's
// own counters are cumulative; diff SchedulerStats snapshots instead.
func (s *Sharded) ResetStats() {
	_ = s.pool.InspectAll(s.inspectors(func(_ int, e clientEngine) { e.ResetStats() }))
}

// inspectors adapts a per-shard closure to the pool's fan-out form.
func (s *Sharded) inspectors(fn func(i int, e clientEngine)) []func() {
	fns := make([]func(), len(s.engines))
	for i, e := range s.engines {
		fns[i] = func() { fn(i, e) }
	}
	return fns
}

// ErrClosed is returned for operations submitted after Close.
var ErrClosed = shard.ErrClosed

// SchedulerStats re-exports the scheduler counters (internal/shard.Stats)
// so callers outside this module can name the type.
type SchedulerStats = shard.Stats

// SchedulerStats returns the request scheduler's own counters (ops,
// batches, per-shard executed requests).
func (s *Sharded) SchedulerStats() SchedulerStats { return s.pool.Stats() }

// TimingStats returns the modeled memory-timing counters aggregated over
// all shards (counters sum, the completion frontier takes the max —
// membus.Stats.Merge semantics, exactly how protocol stats aggregate).
// Snapshots are taken on the workers through the same serialized Inspect
// path as Stats, and under AsyncEviction each shard flushes first, so the
// returned cycle counts always include every write-back owed by the
// traffic observed so far. The bool is false under BackendMem.
func (s *Sharded) TimingStats() (TimingStats, bool) { return s.pool.TimingStats() }

// ModeledFrontier returns the shared memory bus's completion frontier —
// the modeled cycle of the latest retired stage — without quiescing the
// event queue, so it is cheap enough to poll per operation and may lag
// the exact frontier by the stages still in the reorder window. Paced
// load drivers use it as the modeled clock. The bool is false under
// BackendMem.
func (s *Sharded) ModeledFrontier() (uint64, bool) {
	if s.bus == nil {
		return 0, false
	}
	return s.bus.Frontier(), true
}

// Flush completes every shard's deferred state — staged write-backs and
// background eviction under AsyncEviction, dirty PLB labels under a
// recursive position map — leaving all shards in a state a flush-free
// construction could have produced. It serializes with each shard's
// request stream (concurrent traffic keeps flowing; requests accepted
// before the flush are included). Each engine's own Flush decides what is
// owed, so this is a plain barrier when nothing is deferred.
func (s *Sharded) Flush() error {
	errs := make([]error, len(s.engines))
	if err := s.pool.InspectAll(s.inspectors(func(i int, e clientEngine) { errs[i] = e.Flush() })); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// PendingWriteBacks returns the total number of deferred path write-backs
// across all shards that have not yet been completed. Unlike the other
// snapshots it intentionally does NOT flush first — it measures the
// backlog, so it rides the pool's peek path. Always 0 without
// AsyncEviction, and after Close or Flush.
func (s *Sharded) PendingWriteBacks() int {
	counts := make([]int, len(s.engines))
	_ = s.pool.PeekAll(s.inspectors(func(i int, e clientEngine) { counts[i] = e.PendingWriteBacks() }))
	var total int
	for _, n := range counts {
		total += n
	}
	return total
}

// StashSize returns the summed stash occupancy over all shards.
func (s *Sharded) StashSize() int {
	sizes := make([]int, len(s.engines))
	_ = s.pool.InspectAll(s.inspectors(func(i int, e clientEngine) { sizes[i] = e.StashSize() }))
	var total int
	for _, n := range sizes {
		total += n
	}
	return total
}

// ExternalMemoryBytes returns the summed external storage footprint of all
// shards (0 for plain in-memory stores).
func (s *Sharded) ExternalMemoryBytes() uint64 {
	sizes := make([]uint64, len(s.engines))
	_ = s.pool.InspectAll(s.inspectors(func(i int, e clientEngine) { sizes[i] = e.ExternalMemoryBytes() }))
	var total uint64
	for _, n := range sizes {
		total += n
	}
	return total
}

// Close stops accepting new requests, waits until every request already
// accepted has completed (in-flight work is drained, never dropped),
// stops the shard workers, and closes every shard's engine (under
// BackendFile that checkpoints and closes the per-shard tree files and
// WALs). Operations submitted after Close fail with ErrClosed. Close is
// idempotent; Stats and ShardStats keep working on the quiescent shards
// afterwards. The FIRST error — pool drain or any shard's backend — is
// the one reported, even when later shards close cleanly.
func (s *Sharded) Close() error {
	err := s.pool.Close()
	for _, e := range s.engines {
		if cerr := e.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
