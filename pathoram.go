package pathoram

import (
	crand "crypto/rand"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/encrypt"
	"repro/internal/integrity"
	"repro/internal/membus"
	"repro/internal/storage"
	"repro/internal/treemath"
)

// Encryption selects the randomized bucket-encryption scheme.
type Encryption int

const (
	// EncryptCounter is the counter-based scheme (Section 2.2.2):
	// 8 bytes of overhead per bucket. The default.
	EncryptCounter Encryption = iota
	// EncryptStrawman is the per-block random-key scheme (Section 2.2.1):
	// 16 bytes of overhead per block.
	EncryptStrawman
	// EncryptNone stores buckets in the clear. Only meaningful for
	// simulation and benchmarking: a real deployment must encrypt.
	EncryptNone
)

// Backend selects the storage backend behind each ORAM's bucket tree.
type Backend int

const (
	// BackendMem is the untimed default: buckets live in Go memory and
	// every access costs whatever the code costs. Right for functional
	// use and for measuring the implementation itself.
	BackendMem Backend = iota
	// BackendDRAM charges every bucket read and write to a shared
	// cycle-accurate DDR3 model (internal/membus + internal/dram): the
	// serving layer then reports modeled hardware cycles — the paper's
	// actual currency — alongside wall-clock numbers. Logical behavior is
	// bit-identical to BackendMem (timing is observation-only); see
	// DESIGN.md's "Timed serving layer".
	BackendDRAM
	// BackendFile persists each bucket tree in one flat mmap'd file under
	// Config.Dir (internal/storage.File): reads alias the mapping, writes
	// copy into it, and Flush is the durability epoch (msync). Combine
	// with Config.WAL for crash consistency of the deferred write-back
	// pipeline. Logical behavior is bit-identical to BackendMem.
	BackendFile
)

// DRAMLayout selects the bucket-to-physical-address placement under
// BackendDRAM (Section 3.3.4 of the paper).
type DRAMLayout int

const (
	// LayoutSubtree packs k-level subtrees into row-buffer-sized nodes
	// (Figure 6), raising the row-hit rate of path accesses. The default.
	LayoutSubtree DRAMLayout = iota
	// LayoutNaive stores buckets flat in heap order — the placement
	// baseline.
	LayoutNaive
)

// MemSched selects the memory controller's command scheduling under
// BackendDRAM (the open-queue axis of the design space).
type MemSched int

const (
	// MemSchedInOrder issues each channel's column accesses strictly in
	// arrival order, one in flight — the closed controller the model
	// started with, bit for bit. The default.
	MemSchedInOrder MemSched = iota
	// MemSchedFRFCFS holds an open per-channel command queue and issues
	// row-buffer hits first, then oldest (first-ready FCFS), with a
	// starvation cap bounding how long row hits may bypass the oldest
	// request — the DRAMSim2-class reordering the paper's design-space
	// numbers assume. See DRAMQueueDepth and DRAMStarveCap.
	MemSchedFRFCFS
)

// Stats re-exports the protocol counters.
type Stats = core.Stats

// TimingStats re-exports the modeled memory-timing counters
// (internal/membus.Stats) reported by DRAM-backed ORAMs.
type TimingStats = membus.Stats

// Block is a prefetched super-block member returned by Load.
type Block struct {
	Addr uint64
	Data []byte
}

// Config describes a single Path ORAM.
type Config struct {
	// Blocks is the number of addressable blocks (addresses 0..Blocks-1).
	Blocks uint64
	// BlockSize is the block payload in bytes. Zero selects metadata-only
	// mode (no payloads; useful for protocol simulation), which forces
	// EncryptNone.
	BlockSize int
	// Z is the bucket capacity (default 3, the paper's sweet spot for
	// large ORAMs; small ORAMs may prefer 2 — see Figure 9).
	Z int
	// Utilization sizes the tree: Blocks / (Z * bucket count) (default
	// 0.5, Section 4.1.3). Ignored when LeafLevel is set.
	Utilization float64
	// LeafLevel overrides the derived tree depth when > 0.
	LeafLevel int
	// StashCapacity is C in blocks (default 200, Section 4.1.2). The
	// background eviction of Section 3.1 keeps occupancy at or below
	// C - Z(L+1) between accesses, so the stash cannot overflow.
	StashCapacity int
	// SuperBlockSize statically merges groups of adjacent blocks
	// (Section 3.2). 0 or 1 disables merging.
	SuperBlockSize int
	// Encryption selects the bucket encryption (default counter-based).
	Encryption Encryption
	// Key is the 16-byte processor secret key; a fresh random key is
	// drawn when nil (the paper draws a new key per program run to
	// defeat replay of old ciphertexts).
	Key []byte
	// Integrity enables the Section 5 authentication tree: every path
	// read is verified for authenticity and freshness.
	Integrity bool
	// DisableBackgroundEviction turns off automatic dummy accesses
	// (simulation only: the stash can then overflow, which is Path ORAM
	// failure).
	DisableBackgroundEviction bool
	// AsyncEviction enables the staged access path: Read/Write/Update
	// return as soon as the path has been read and merged and the eviction
	// placement computed; the write-back I/O (serialization, encryption,
	// authentication, store write) is deferred onto a bounded queue, and
	// stash draining is expected to happen in idle time. Someone must
	// drain: inside a Sharded the shard workers do it automatically during
	// idle queue time; a standalone ORAM owner calls StepBackground (e.g.
	// between requests) and Flush when quiescing. Logical contents are
	// never stale — reads of paths with pending write-backs are served
	// from the write buffer — and the stash bound still holds: if deferred
	// work piles up faster than idle time drains it, draining falls back
	// inline, degrading to the synchronous protocol rather than failing.
	AsyncEviction bool
	// MaxDeferredWriteBacks caps the deferred write-back queue under
	// AsyncEviction (default core.DefaultMaxDeferredWriteBacks). With
	// BackendDRAM the queue is exactly the modeled memory controller's
	// write buffer, so this knob is the write-buffer-depth experiment:
	// deeper buffers group write-backs together (fewer read/write bus
	// turnarounds, more write-buffer read hits) at the price of more
	// pinned path copies. See EXPERIMENTS.md.
	MaxDeferredWriteBacks int
	// ConstantTimeStash replaces the stash's early-return lookup scans with
	// fixed-length masked scans (crypto/subtle) over a preallocated window,
	// so where — and whether — a block sits in the stash changes neither the
	// instruction count nor the memory-touch count of an access. This closes
	// the stash timing side channel of the secure-processor threat model
	// (see SECURITY.md); the ORAM's observable behavior is otherwise
	// bit-identical. Requires a bounded stash (the default StashCapacity
	// qualifies). Costs a full-window scan per lookup: with the default
	// C=200 stash this is a modest constant per access.
	ConstantTimeStash bool
	// Backend selects the bucket storage backend (default BackendMem).
	// BackendDRAM wraps the store in a timed layer charging a shared
	// cycle-accurate DDR3 model; TimingStats then reports modeled cycles.
	Backend Backend
	// DRAMChannels is the number of independent DDR3 channels under
	// BackendDRAM (default 2; the paper sweeps 1/2/4). Inside a
	// ShardedConfig all shards share one memory system with this many
	// channels.
	DRAMChannels int
	// DRAMLayout selects the bucket-to-row placement under BackendDRAM
	// (default LayoutSubtree, the paper's packed-subtree layout).
	DRAMLayout DRAMLayout
	// DRAMSerialize is a modeling baseline: issue every shard's memory
	// stages at the global completion frontier, forbidding any overlap
	// between different shards' path reads and write-backs. It exists so
	// the intra-access-overlap gain of the shared scheduler is measurable
	// (EXPERIMENTS.md); leave it false for the actual model.
	DRAMSerialize bool
	// DRAMSched selects the controller's command scheduling under
	// BackendDRAM: MemSchedInOrder (default) or MemSchedFRFCFS, the open
	// per-channel queue that reorders for row-buffer locality and
	// bank-level parallelism.
	DRAMSched MemSched
	// DRAMQueueDepth is the open-queue window per channel under
	// MemSchedFRFCFS (0 = default 8; depth 1 reproduces in-order issue
	// exactly).
	DRAMQueueDepth int
	// DRAMStarveCap bounds how many times younger row hits may bypass the
	// oldest queued request under MemSchedFRFCFS before it is forced
	// (0 = default 4).
	DRAMStarveCap int
	// Dir is the directory holding the tree (and WAL) files under
	// BackendFile. Required there, rejected elsewhere: a directory that
	// silently does nothing would be an inert knob.
	Dir string
	// WAL, under BackendFile, wraps the tree file in a write-ahead log
	// (internal/storage.WAL): every path write-back is logged before it
	// is acknowledged, Flush checkpoints the log into the tree file and
	// truncates it, and reopening after a crash replays the logged
	// prefix — the deferred write-back FIFO becomes crash-consistent.
	// Requires BackendFile (a WAL over volatile memory is an inert knob).
	WAL bool
	// WALDepth, when > 0, bounds the WAL between Flushes: after that many
	// logged path frames the log self-checkpoints. 0 checkpoints only on
	// Flush/Close. Requires WAL.
	WALDepth int
	// bus, when set, attaches this ORAM to an existing shared memory
	// scheduler instead of creating one — NewSharded injects the bus it
	// built so all shards contend for the same channels.
	bus *membus.Bus
	// storeName is the per-tree file-name prefix under BackendFile
	// ("oram" standalone; NewSharded and NewHierarchy derive unique
	// prefixes per shard and per recursion level).
	storeName string
	// Rand, when set, makes all randomness (leaf selection, per-block
	// keys) deterministic for reproducible simulation. Production use
	// must leave it nil: leaves then come from crypto/rand. NewSharded
	// never shares one generator across shards (math/rand generators are
	// not goroutine-safe); it derives an independent per-shard generator
	// from this one instead, keeping sharded simulations reproducible.
	Rand *rand.Rand
	// OnPathAccess, when set, observes every path the ORAM touches, in
	// order, real and dummy alike — exactly the adversary's view of the
	// access sequence. Observability/test hook; it runs synchronously on
	// the accessing goroutine. In a ShardedConfig the hook is copied into
	// every shard, whose workers invoke it concurrently — it must be safe
	// for concurrent use there (or use OnShardPathAccess, whose shard
	// index makes per-shard accumulators race-free).
	OnPathAccess func(leaf uint64)
}

func (c *Config) applyDefaults() error {
	if c.Blocks == 0 {
		return fmt.Errorf("pathoram: Blocks must be >= 1")
	}
	if c.Z == 0 {
		c.Z = 3
	}
	if c.Utilization == 0 {
		c.Utilization = 0.5
	}
	if c.Utilization < 0 || c.Utilization > 1 {
		return fmt.Errorf("pathoram: utilization %v out of (0,1]", c.Utilization)
	}
	if c.StashCapacity == 0 {
		c.StashCapacity = 200
	}
	if c.SuperBlockSize == 0 {
		c.SuperBlockSize = 1
	}
	if c.LeafLevel == 0 {
		slots := uint64(float64(c.Blocks) / c.Utilization)
		l := 0
		for uint64(c.Z)*(1<<uint(l+1)-1) < slots && l < treemath.MaxLeafLevel {
			l++
		}
		for uint64(c.Z)*(1<<uint(l+1)-1) < c.Blocks && l < treemath.MaxLeafLevel {
			l++
		}
		c.LeafLevel = l
	}
	if c.BlockSize == 0 && c.Encryption != EncryptNone {
		c.Encryption = EncryptNone
	}
	switch c.Backend {
	case BackendMem, BackendDRAM:
		if c.Dir != "" {
			return fmt.Errorf("pathoram: Dir names the tree-file directory; set Backend: BackendFile")
		}
		if c.WAL || c.WALDepth != 0 {
			return fmt.Errorf("pathoram: WAL/WALDepth make the file backend crash-consistent; set Backend: BackendFile")
		}
	case BackendFile:
		if c.Dir == "" {
			return fmt.Errorf("pathoram: BackendFile needs Dir (where the tree files live)")
		}
		if c.BlockSize == 0 {
			return fmt.Errorf("pathoram: BackendFile persists payloads; metadata-only mode (BlockSize 0) has nothing to persist")
		}
		if !c.WAL && c.WALDepth != 0 {
			return fmt.Errorf("pathoram: WALDepth bounds the write-ahead log; set WAL: true")
		}
	default:
		return fmt.Errorf("pathoram: unknown backend %d", c.Backend)
	}
	if c.WALDepth < 0 {
		return fmt.Errorf("pathoram: WALDepth=%d must be >= 0", c.WALDepth)
	}
	if c.storeName == "" {
		c.storeName = "oram"
	}
	switch c.DRAMLayout {
	case LayoutSubtree, LayoutNaive:
	default:
		return fmt.Errorf("pathoram: unknown DRAM layout %d", c.DRAMLayout)
	}
	if c.DRAMChannels < 0 {
		return fmt.Errorf("pathoram: DRAMChannels=%d must be >= 1", c.DRAMChannels)
	}
	switch c.DRAMSched {
	case MemSchedInOrder, MemSchedFRFCFS:
	default:
		return fmt.Errorf("pathoram: unknown memory scheduler %d", c.DRAMSched)
	}
	if c.DRAMQueueDepth < 0 || c.DRAMStarveCap < 0 {
		return fmt.Errorf("pathoram: DRAMQueueDepth/DRAMStarveCap must be >= 0")
	}
	if c.DRAMSched != MemSchedFRFCFS && (c.DRAMQueueDepth != 0 || c.DRAMStarveCap != 0) {
		return fmt.Errorf("pathoram: DRAMQueueDepth/DRAMStarveCap parameterize the open queue; set DRAMSched: MemSchedFRFCFS")
	}
	if c.Key == nil {
		c.Key = make([]byte, encrypt.KeySize)
		if _, err := crand.Read(c.Key); err != nil {
			return fmt.Errorf("pathoram: drawing key: %w", err)
		}
	} else {
		// Copy so a caller mutating its slice afterwards cannot desync the
		// schemes built from it.
		c.Key = append([]byte(nil), c.Key...)
	}
	return nil
}

func (c *Config) leafSource() core.LeafSource {
	if c.Rand != nil {
		return core.NewMathLeafSource(c.Rand)
	}
	return core.NewCryptoLeafSource()
}

// buildScheme constructs the encryption scheme for one tree.
func (c *Config) buildScheme(numBuckets uint64) (encrypt.Scheme, error) {
	switch c.Encryption {
	case EncryptCounter:
		return encrypt.NewCounterScheme(c.Key, numBuckets)
	case EncryptStrawman:
		if c.Rand != nil {
			return encrypt.NewStrawmanScheme(c.Key, c.Rand)
		}
		return encrypt.NewStrawmanScheme(c.Key, crand.Reader)
	default:
		return nil, fmt.Errorf("pathoram: scheme %d has no cipher", c.Encryption)
	}
}

// ORAM is a single Path ORAM with a private, oblivious block interface.
// It is single-threaded: one goroutine owns it (the sharded serving layer
// enforces exactly that ownership for its engines). It satisfies Client;
// the batch operations run their requests back to back on the calling
// goroutine.
type ORAM struct {
	cfg     Config
	inner   *core.ORAM
	auth    *integrity.Tree
	pos     *core.OnChipPositionMap
	store   interface{ MemoryBytes() uint64 }
	port    *membus.Port    // BackendDRAM: this tree's window onto the shared bus
	persist storage.Storage // BackendFile: the durable storage under the store
}

// modeledBucketBytes returns the byte footprint one bucket occupies on the
// modeled memory bus: the actual external stride for encrypted stores, and
// the plaintext serialization (padded to the DRAM access granularity) for
// plain stores — metadata-only trees still move their headers.
func modeledBucketBytes(scheme encrypt.Scheme, z, blockBytes int) int {
	if scheme != nil {
		return encrypt.PaddedBucketBytes(scheme, z, blockBytes)
	}
	raw := encrypt.PlainBucketBytes(z, blockBytes)
	if r := raw % encrypt.PadGranularity; r != 0 {
		raw += encrypt.PadGranularity - r
	}
	return raw
}

// attachTiming wraps store in the timed layer, attaching to the injected
// shared bus or — for a standalone DRAM-backed ORAM — a private one.
func (c *Config) attachTiming(store core.PathStore, scheme encrypt.Scheme) (core.PathStore, *membus.Port, error) {
	bus := c.bus
	if bus == nil {
		var err error
		if bus, err = membus.New(membus.Config{
			Channels:  c.DRAMChannels,
			Layout:    c.DRAMLayout.membusLayout(),
			Serialize: c.DRAMSerialize,
			Sched:     c.dramSchedConfig(),
		}); err != nil {
			return nil, nil, err
		}
	}
	port, err := bus.AttachShard(c.LeafLevel, modeledBucketBytes(scheme, c.Z, c.BlockSize))
	if err != nil {
		return nil, nil, err
	}
	timed, err := core.NewTimedStore(store, port)
	if err != nil {
		return nil, nil, err
	}
	return timed, port, nil
}

func (l DRAMLayout) membusLayout() membus.Layout {
	if l == LayoutNaive {
		return membus.LayoutNaive
	}
	return membus.LayoutSubtree
}

// dramSchedConfig translates the public scheduler knobs into the
// controller's configuration.
func (c *Config) dramSchedConfig() dram.SchedConfig {
	policy := dram.SchedInOrder
	if c.DRAMSched == MemSchedFRFCFS {
		policy = dram.SchedFRFCFS
	}
	return dram.SchedConfig{
		Policy:        policy,
		QueueDepth:    c.DRAMQueueDepth,
		StarvationCap: c.DRAMStarveCap,
	}
}

// openPersist builds the BackendFile storage stack for one tree: the
// mmap'd flat tree file at Dir/<name>.tree, optionally wrapped in the
// write-ahead log at Dir/<name>.wal (replaying any crash-left prefix).
func (c *Config) openPersist(numBuckets uint64, stride int) (storage.Storage, error) {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("pathoram: creating Dir: %w", err)
	}
	base := filepath.Join(c.Dir, c.storeName)
	var st storage.Storage
	st, err := storage.OpenFile(base+".tree", numBuckets, stride)
	if err != nil {
		return nil, err
	}
	if c.WAL {
		w, err := storage.OpenWAL(st, base+".wal", storage.WALConfig{CheckpointEvery: c.WALDepth})
		if err != nil {
			st.Close()
			return nil, err
		}
		st = w
	}
	return st, nil
}

// New builds an ORAM from the configuration.
func New(cfg Config) (*ORAM, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if cfg.Integrity && cfg.Encryption == EncryptNone {
		return nil, fmt.Errorf("pathoram: integrity verification requires encryption (hashes cover ciphertexts)")
	}
	tree := treemath.New(cfg.LeafLevel)
	var store core.PathStore
	var scheme encrypt.Scheme
	var auth *integrity.Tree
	var footprint interface{ MemoryBytes() uint64 }
	var persist storage.Storage
	if cfg.Encryption == EncryptNone {
		if cfg.Backend == BackendFile {
			var err error
			persist, err = cfg.openPersist(tree.NumBuckets(), storage.PlainRecordBytes(cfg.Z, cfg.BlockSize))
			if err != nil {
				return nil, err
			}
			ps, err := storage.NewPathStore(persist, cfg.LeafLevel, cfg.Z, cfg.BlockSize)
			if err != nil {
				persist.Close()
				return nil, err
			}
			store, footprint = ps, ps
		} else {
			ms, err := core.NewMemStore(cfg.LeafLevel, cfg.Z, cfg.BlockSize)
			if err != nil {
				return nil, err
			}
			store = ms
		}
	} else {
		var err error
		if scheme, err = cfg.buildScheme(tree.NumBuckets()); err != nil {
			return nil, err
		}
		scfg := encrypt.StoreConfig{
			LeafLevel: cfg.LeafLevel, Z: cfg.Z, BlockBytes: cfg.BlockSize,
			Scheme: scheme,
		}
		if cfg.Integrity {
			auth = encrypt.NewAuthTree(cfg.LeafLevel, cfg.Z, cfg.BlockSize, scheme)
			scfg.Auth = auth
		}
		if cfg.Backend == BackendFile {
			persist, err = cfg.openPersist(tree.NumBuckets(), encrypt.PaddedBucketBytes(scheme, cfg.Z, cfg.BlockSize))
			if err != nil {
				return nil, err
			}
			scfg.Backing = persist
		}
		es, err := encrypt.NewStore(scfg)
		if err != nil {
			if persist != nil {
				persist.Close()
			}
			return nil, err
		}
		store = es
		footprint = es
	}
	var port *membus.Port
	if cfg.Backend == BackendDRAM {
		var err error
		if store, port, err = cfg.attachTiming(store, scheme); err != nil {
			return nil, err
		}
	}
	src := cfg.leafSource()
	params := core.Params{
		LeafLevel:             cfg.LeafLevel,
		Z:                     cfg.Z,
		BlockBytes:            cfg.BlockSize,
		Blocks:                cfg.Blocks,
		StashCapacity:         cfg.StashCapacity,
		SuperBlock:            cfg.SuperBlockSize,
		BackgroundEviction:    !cfg.DisableBackgroundEviction && cfg.StashCapacity > 0,
		DeferWriteBack:        cfg.AsyncEviction,
		MaxDeferredWriteBacks: cfg.MaxDeferredWriteBacks,
		ConstantTimeStash:     cfg.ConstantTimeStash,
	}
	if cfg.OnPathAccess != nil {
		hook := cfg.OnPathAccess
		params.OnPathAccess = func(leaf uint64, _ core.AccessKind) { hook(leaf) }
	}
	pos, err := core.NewOnChipPositionMap(params.Groups(), tree.NumLeaves(), src)
	if err != nil {
		return nil, err
	}
	inner, err := core.New(params, store, pos, src)
	if err != nil {
		return nil, err
	}
	return &ORAM{cfg: cfg, inner: inner, auth: auth, pos: pos, store: footprint, port: port, persist: persist}, nil
}

// Read returns a copy of the block at addr (zero-filled if never written).
// One oblivious path access.
func (o *ORAM) Read(addr uint64) ([]byte, error) {
	return o.inner.Access(addr, core.OpRead, nil)
}

// ReadInto reads the block at addr into the caller-provided dst (which
// must be BlockSize bytes), avoiding the per-read result allocation of
// Read — the hot-path form for throughput-sensitive callers. found reports
// whether the block was ever written; on a miss dst is zero-filled. One
// oblivious path access.
func (o *ORAM) ReadInto(addr uint64, dst []byte) (found bool, err error) {
	return o.inner.ReadInto(addr, dst)
}

// Write replaces the block at addr. One oblivious path access.
func (o *ORAM) Write(addr uint64, data []byte) error {
	_, err := o.inner.Access(addr, core.OpWrite, data)
	return err
}

// Update applies fn to the block's content in place, in a single oblivious
// read-modify-write access.
func (o *ORAM) Update(addr uint64, fn func(data []byte)) error {
	return o.inner.Update(addr, fn)
}

// Load removes the block (and, with super blocks, its resident group
// members) from the ORAM and hands them to the caller — the exclusive-ORAM
// read of Section 3.3.1. found is false if addr was never written.
func (o *ORAM) Load(addr uint64) (data []byte, found bool, group []Block, err error) {
	data, found, slots, err := o.inner.Load(addr)
	if err != nil {
		return nil, false, nil, err
	}
	for _, s := range slots {
		group = append(group, Block{Addr: s.Addr, Data: s.Data})
	}
	return data, found, group, nil
}

// Store returns a previously loaded block. It inserts straight into the
// stash — no path access (Section 3.3.1).
func (o *ORAM) Store(addr uint64, data []byte) error {
	return o.inner.Store(addr, data)
}

// ReadBatch reads every address, back to back on the calling goroutine
// (a single tree has no intra-batch parallelism to exploit — Sharded
// does), under the shared batch contract (see serialReadBatch).
func (o *ORAM) ReadBatch(addrs []uint64) ([][]byte, error) {
	return serialReadBatch(addrs, o.cfg.Blocks, o.Read)
}

// WriteBatch writes data[i] to addrs[i] for every i, back to back on the
// calling goroutine, under the shared batch contract (see
// serialWriteBatch).
func (o *ORAM) WriteBatch(addrs []uint64, data [][]byte) error {
	return serialWriteBatch(addrs, data, o.cfg.Blocks, o.Write)
}

// PaddingAccess performs one dummy path access — a freshly drawn uniform
// path is read and written back, remapping nothing — and counts it as
// scheduler padding (Stats.PaddingAccesses). On the memory bus it is
// indistinguishable from a real access; the sharded serving layer's padded
// batch mode uses it to fill the dummy slots of a fixed-shape schedule.
func (o *ORAM) PaddingAccess() error { return o.inner.PaddingAccess() }

// BackgroundWork reports what one StepBackground call did.
type BackgroundWork = core.BackgroundWork

// Re-exported StepBackground outcomes.
const (
	BgNone      = core.BgNone
	BgWriteBack = core.BgWriteBack
	BgEviction  = core.BgEviction
)

// StepBackground performs one unit of deferred work — completing one
// pending path write-back, or (when allowEviction is set and the stash
// sits above the idle low-water mark) issuing one background-eviction
// dummy access — and reports which. Under AsyncEviction, call it whenever
// the ORAM would otherwise sit idle; BgNone means there is nothing useful
// to do right now. Inside a Sharded the shard workers call it for you.
func (o *ORAM) StepBackground(allowEviction bool) (BackgroundWork, error) {
	return o.inner.StepBackground(allowEviction)
}

// Flush completes every deferred path write-back and fully drains
// background eviction, leaving the ORAM in a state the synchronous
// protocol could have produced. Under BackendFile it is also the
// durability epoch: the tree file is msync'd (and the WAL, if enabled,
// checkpointed and truncated) before Flush returns. A no-op without
// AsyncEviction on volatile backends.
func (o *ORAM) Flush() error {
	if err := o.inner.Flush(); err != nil {
		return err
	}
	if o.persist != nil {
		return o.persist.Sync()
	}
	return nil
}

// PendingWriteBacks returns the number of deferred path write-backs not
// yet completed (always 0 without AsyncEviction).
func (o *ORAM) PendingWriteBacks() int { return o.inner.PendingWriteBacks() }

// Stats returns the protocol counters.
func (o *ORAM) Stats() Stats { return o.inner.Stats() }

// TimingStats returns the modeled memory-timing counters of this tree's
// port on the shared memory scheduler: DRAM traffic and row-hit counters,
// stage-2/stage-5 path charges, and the modeled completion frontier in
// DDR3 cycles. The bool is false under BackendMem (no model attached).
// Implements shard.TimedEngine, so pools aggregate these like protocol
// stats. Note the counters advance when I/O is *charged*: under
// AsyncEviction a write-back's cycles land when the flush schedule issues
// it, so snapshot after Flush (Sharded does this automatically) to see
// access-complete totals.
func (o *ORAM) TimingStats() (TimingStats, bool) {
	if o.port == nil {
		return TimingStats{}, false
	}
	return o.port.Stats(), true
}

// ResetStats clears the protocol counters (peak occupancy included).
// BlocksInORAM is a live occupancy gauge, not a counter, and survives the
// reset.
func (o *ORAM) ResetStats() { o.inner.ResetStats() }

// StashSize returns the current stash occupancy in blocks.
func (o *ORAM) StashSize() int { return o.inner.StashSize() }

// LeafLevel returns L; the tree has L+1 levels.
func (o *ORAM) LeafLevel() int { return o.cfg.LeafLevel }

// NumORAMs returns the number of ORAMs an access walks: 1 — a flat ORAM
// keeps its whole position map on chip. (Hierarchy returns the chain
// length H; the accessor exists on both so the serving layer can report
// the recursion depth uniformly.)
func (o *ORAM) NumORAMs() int { return 1 }

// OnChipPositionMapBytes returns the on-chip position-map footprint at
// 4 bytes per entry — for a flat ORAM, the whole map.
func (o *ORAM) OnChipPositionMapBytes() uint64 { return o.pos.SizeBits(32) / 8 }

// OnChipBytes returns the total trusted-memory provision of the
// construction: the on-chip position map plus the stash bound (C slots of
// payload and metadata — the processor reserves it whether or not the
// stash fills; see core.Params.StashBoundBytes). This is the on-chip-bytes
// objective of the paper's design space: recursion trades it against
// extra path accesses per operation.
func (o *ORAM) OnChipBytes() uint64 {
	return o.OnChipPositionMapBytes() + o.inner.Params().StashBoundBytes()
}

// Close quiesces the ORAM: every deferred write-back is completed and
// background eviction fully drained (Flush). On volatile backends it owns
// no goroutines or external handles, so unlike Sharded.Close it does not
// invalidate the receiver — it is the Client interface's quiesce point.
// Under BackendFile it additionally checkpoints and closes the tree file
// (and WAL); the ORAM then rejects further I/O, and the first backend
// error — flush, sync, or close — is the one reported.
func (o *ORAM) Close() error {
	err := o.inner.Flush()
	if o.persist != nil {
		if e := o.persist.Close(); err == nil {
			err = e
		}
	}
	return err
}

// ExternalMemoryBytes returns the external storage footprint (0 for plain
// in-memory stores).
func (o *ORAM) ExternalMemoryBytes() uint64 {
	if o.store == nil {
		return 0
	}
	return o.store.MemoryBytes()
}
