package pathoram

import (
	"errors"
	"fmt"
	"testing"
)

// failingCloseEngine wraps a real engine, closes it for real, but reports
// an injected backend error — simulating a shard whose tree file fails
// its final checkpoint.
type failingCloseEngine struct {
	clientEngine
	err error
}

func (e failingCloseEngine) Close() error {
	cerr := e.clientEngine.Close()
	if e.err != nil {
		return e.err
	}
	return cerr
}

// TestShardedCloseSurfacesFirstEngineError pins the close-error contract
// of the serving layer: when several shards fail their backend close, the
// FIRST failure is the one reported — and it is reported even though
// later shards (including shard 3, which closes cleanly) are still all
// closed. cmd/oram-serve and cmd/oram-server turn this error into a
// non-zero exit, so a dropped final checkpoint can never look clean.
func TestShardedCloseSurfacesFirstEngineError(t *testing.T) {
	errShard1 := errors.New("shard 1: injected close failure")
	errShard2 := errors.New("shard 2: injected close failure")
	closed := make([]bool, 4)
	cfg := ShardedConfig{
		Config: Config{Blocks: 64, BlockSize: 16},
		Shards: 4,
	}
	s, err := newSharded(cfg, true, func(i int, sc Config) (clientEngine, error) {
		o, err := New(sc)
		if err != nil {
			return nil, err
		}
		var injected error
		switch i {
		case 1:
			injected = errShard1
		case 2:
			injected = errShard2
		}
		return failingCloseEngine{clientEngine: trackClose{oramEngine{o}, &closed[i]}, err: injected}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Touch every shard so the close path drains real in-flight state.
	for addr := uint64(0); addr < 8; addr++ {
		if err := s.Write(addr, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
	}
	err = s.Close()
	if !errors.Is(err, errShard1) {
		t.Fatalf("Close returned %v, want the first failing shard's error %v", err, errShard1)
	}
	if errors.Is(err, errShard2) {
		t.Fatalf("Close joined later errors into %v; the contract is first-error-wins", err)
	}
	for i, ok := range closed {
		if !ok {
			t.Fatalf("shard %d was not closed; a failing earlier shard must not stop the sweep", i)
		}
	}
}

// trackClose records that the underlying engine's Close actually ran.
type trackClose struct {
	clientEngine
	done *bool
}

func (e trackClose) Close() error {
	*e.done = true
	return e.clientEngine.Close()
}

// TestShardedCloseIdempotentKeepsEngineError pins re-close semantics:
// Close is idempotent at the pool layer, and a repeated Close still
// surfaces the engines' (sticky) backend failure rather than silently
// reporting success once the workers are gone.
func TestShardedCloseIdempotentKeepsEngineError(t *testing.T) {
	errEngine := errors.New("engine: injected close failure")
	cfg := ShardedConfig{
		Config: Config{Blocks: 16, BlockSize: 16},
		Shards: 2,
	}
	s, err := newSharded(cfg, true, func(i int, sc Config) (clientEngine, error) {
		o, err := New(sc)
		if err != nil {
			return nil, err
		}
		return failingCloseEngine{clientEngine: oramEngine{o}, err: fmt.Errorf("%w (shard %d)", errEngine, i)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); !errors.Is(err, errEngine) {
		t.Fatalf("first Close returned %v, want the injected engine error", err)
	}
	// Close is idempotent at the pool layer; the engines report their
	// (sticky) failure again rather than being silently skipped.
	if err := s.Close(); !errors.Is(err, errEngine) {
		t.Fatalf("second Close returned %v, want the engine error again", err)
	}
}
