package pathoram

import (
	"bytes"
	"fmt"
	"testing"
)

// TestPooledCTEquivalenceReplay replays one seeded workload through two
// identically-seeded serving layers — default mode and ConstantTimeStash —
// across partitions and eviction modes, and requires every read to return
// identical bytes. Together with the core-level tree comparison
// (TestCTEquivalenceBitIdentical) this proves the pooled, constant-time
// hot path is a pure execution-strategy change: same protocol, same
// randomness consumption, same state. Run under -race this also exercises
// the pooled request state (reqPool) and per-shard arenas concurrently.
func TestPooledCTEquivalenceReplay(t *testing.T) {
	const blocks = 512
	const blockSize = 32
	parts := map[string]Partition{"stripe": PartitionStripe, "random": PartitionRandom}
	for partName, part := range parts {
		for _, async := range []bool{false, true} {
			mode := "sync"
			if async {
				mode = "async"
			}
			name := fmt.Sprintf("%s/%s", partName, mode)
			t.Run(name, func(t *testing.T) {
				build := func(ct bool) *Sharded {
					s, err := NewSharded(ShardedConfig{
						Shards: 4, Partition: part,
						Config: Config{
							Blocks: blocks, BlockSize: blockSize,
							Encryption:        EncryptCounter,
							ConstantTimeStash: ct,
							AsyncEviction:     async,
							Rand:              testRand(91),
						},
					})
					if err != nil {
						t.Fatal(err)
					}
					return s
				}
				legacy, ct := build(false), build(true)
				defer legacy.Close()
				defer ct.Close()
				rng := testRand(92)
				dstA := make([]byte, blockSize)
				dstB := make([]byte, blockSize)
				for i := 0; i < 800; i++ {
					addr := rng.Uint64() % blocks
					switch rng.Intn(3) {
					case 0:
						data := bytes.Repeat([]byte{byte(i)}, blockSize)
						if err := legacy.Write(addr, data); err != nil {
							t.Fatal(err)
						}
						if err := ct.Write(addr, data); err != nil {
							t.Fatal(err)
						}
					case 1:
						a, err := legacy.Read(addr)
						if err != nil {
							t.Fatal(err)
						}
						b, err := ct.Read(addr)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(a, b) {
							t.Fatalf("op %d: Read(%d) diverged: % x vs % x", i, addr, a, b)
						}
					case 2:
						fa, err := legacy.ReadInto(addr, dstA)
						if err != nil {
							t.Fatal(err)
						}
						fb, err := ct.ReadInto(addr, dstB)
						if err != nil {
							t.Fatal(err)
						}
						if fa != fb || !bytes.Equal(dstA, dstB) {
							t.Fatalf("op %d: ReadInto(%d) diverged: found %v/%v, % x vs % x",
								i, addr, fa, fb, dstA, dstB)
						}
					}
					if async && i%16 == 0 {
						if _, err := legacy.StepBackground(true); err != nil {
							t.Fatal(err)
						}
						if _, err := ct.StepBackground(true); err != nil {
							t.Fatal(err)
						}
					}
				}
				if err := legacy.Flush(); err != nil {
					t.Fatal(err)
				}
				if err := ct.Flush(); err != nil {
					t.Fatal(err)
				}
				// Final sweep: every address reads back identically.
				for a := uint64(0); a < blocks; a++ {
					x, err := legacy.Read(a)
					if err != nil {
						t.Fatal(err)
					}
					y, err := ct.Read(a)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(x, y) {
						t.Fatalf("final sweep: Read(%d) diverged: % x vs % x", a, x, y)
					}
				}
			})
		}
	}
}

// TestLoadMultiMemberSuperBlockGroup pins the Load group-extraction fix:
// with a 4-block super block fully resident, Load must hand back every
// sibling. The old swap-delete scan could skip a member when the
// extraction itself reordered the stash mid-sweep (the swapped-in tail
// entry was never revisited); extractRange sweeps stably, so membership
// no longer depends on stash order.
func TestLoadMultiMemberSuperBlockGroup(t *testing.T) {
	o, err := New(Config{
		Blocks: 256, BlockSize: 8, SuperBlockSize: 4, Z: 4, Rand: testRand(21),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Group of addresses 40..43. Write all four, then Load one member:
	// the path read pulls the co-located group into the stash, and the
	// extraction must return the other three regardless of where the
	// sweep finds them.
	payload := func(a uint64) []byte { return bytes.Repeat([]byte{byte(a)}, 8) }
	for a := uint64(40); a < 44; a++ {
		if err := o.Write(a, payload(a)); err != nil {
			t.Fatal(err)
		}
	}
	data, found, group, err := o.Load(41)
	if err != nil {
		t.Fatal(err)
	}
	if !found || !bytes.Equal(data, payload(41)) {
		t.Fatalf("Load(41): found=%v data=%x", found, data)
	}
	got := map[uint64][]byte{}
	for _, m := range group {
		got[m.Addr] = m.Data
	}
	for _, want := range []uint64{40, 42, 43} {
		d, ok := got[want]
		if !ok {
			t.Fatalf("group member %d missing (group: %d members %v)", want, len(group), addrsOf(group))
		}
		if !bytes.Equal(d, payload(want)) {
			t.Errorf("group member %d data = %x, want %x", want, d, payload(want))
		}
	}
	if len(group) != 3 {
		t.Errorf("group has %d members, want 3 (%v)", len(group), addrsOf(group))
	}
	// Return everything; the round trip must preserve all four payloads.
	if err := o.Store(41, data); err != nil {
		t.Fatal(err)
	}
	for _, m := range group {
		if err := o.Store(m.Addr, m.Data); err != nil {
			t.Fatal(err)
		}
	}
	for a := uint64(40); a < 44; a++ {
		d, err := o.Read(a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(d, payload(a)) {
			t.Errorf("after round trip, Read(%d) = %x, want %x", a, d, payload(a))
		}
	}
}

func addrsOf(group []Block) []uint64 {
	out := make([]uint64, len(group))
	for i, b := range group {
		out[i] = b.Addr
	}
	return out
}
